package sched

import (
	"math"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

func TestClassesOf(t *testing.T) {
	g := pipelineGroup(t, "p", 2, 1, 1, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	classes := classesOf(snap, snap.Flows)
	if len(classes) != 3 {
		t.Fatalf("pipeline classes = %d, want 3", len(classes))
	}
	for i, c := range classes {
		if !c.deadline.ApproxEq(unit.Time(2 * i)) {
			t.Errorf("class %d deadline = %v", i, c.deadline)
		}
	}

	cg := coflowGroup(t, "c", 1, 2, 3)
	snapC := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"c": cg}, nil)
	classesC := classesOf(snapC, snapC.Flows)
	if len(classesC) != 1 || len(classesC[0].flows) != 3 {
		t.Errorf("coflow classes = %+v", classesC)
	}
}

// On a Coflow group, EchelonMADD must collapse to classic MADD: rates
// proportional to remaining volume, simultaneous finish (Property 2).
func TestEchelonMADDOnCoflowEqualsMADD(t *testing.T) {
	g := coflowGroup(t, "g", 1, 3)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g": g}, nil)
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["g-f0"])-0.25) > 1e-6 || math.Abs(float64(rates["g-f1"])-0.75) > 1e-6 {
		t.Errorf("rates = %v, want MADD's 0.25/0.75", rates)
	}
}

// A feasible staggered pipeline gets zero tardiness: the head flow uses the
// full link now, later flows wait their turn.
func TestEchelonMADDStaggeredPipeline(t *testing.T) {
	// Deadlines 2, 4, 6 with sizes 2 each on a unit link: exactly feasible
	// at τ=0 by transmitting back-to-back.
	g := pipelineGroup(t, "p", 2, 2, 2, 2)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	// Shift deadlines so flow 0's deadline is 2: reference = 2 means
	// deadlines 2, 4, 6.
	snap.Groups["p"].Reference = 2
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["p-f0"])-1) > 1e-6 {
		t.Errorf("head rate = %v, want 1", rates["p-f0"])
	}
	if rates["p-f1"] > 1e-6 || rates["p-f2"] > 1e-6 {
		t.Errorf("later flows should idle now: %v", rates)
	}
}

// The Fig. 6 catch-up behaviour: a delayed later flow (deadline already
// passed) forces positive tardiness, and the scheduler lets the group catch
// up by planning every member against deadline+τ.
func TestEchelonMADDCatchUp(t *testing.T) {
	g := pipelineGroup(t, "p", 1, 1, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	// now = 0 but reference = -5: deadlines -5 and -4 are long past. The
	// group's minimal tardiness is driven by shipping 2 bytes at rate 1:
	// head finishes at 1 (tardiness 6), second at 2 (tardiness 6).
	snap.Groups["p"].Reference = -5
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// Head (earlier deadline) gets the link first.
	if math.Abs(float64(rates["p-f0"])-1) > 1e-6 {
		t.Errorf("head rate = %v, want 1 (catch up at full speed)", rates["p-f0"])
	}
}

// AchievedTardiness floors the group's target: a group that already missed
// by 3 plans the rest against deadline+3, using minimal rates.
func TestEchelonMADDAchievedTardinessFloor(t *testing.T) {
	g := pipelineGroup(t, "p", 10, 4, 4)
	// Only the second flow remains (stage 1, deadline 10).
	snap := &Snapshot{
		Now: 0,
		Groups: map[string]*GroupState{
			"p": {Group: g, Reference: 0, AchievedTardiness: 3},
		},
	}
	snap.Flows = []*FlowState{{Flow: g.Flows[1], GroupID: "p", Remaining: 4}}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// Minimal rate to finish 4 bytes by deadline 10+3=13: 4/13.
	want := 4.0 / 13.0
	if math.Abs(float64(rates["p-f1"])-want) > 1e-6 {
		t.Errorf("rate = %v, want %v (minimal against floored target)", rates["p-f1"], want)
	}
}

// Without the floor, the same flow would be paced to finish exactly at its
// deadline.
func TestEchelonMADDMinimalRates(t *testing.T) {
	g := pipelineGroup(t, "p", 10, 4, 4)
	snap := &Snapshot{
		Now:    0,
		Groups: map[string]*GroupState{"p": {Group: g, Reference: 0}},
	}
	snap.Flows = []*FlowState{{Flow: g.Flows[1], GroupID: "p", Remaining: 4}}
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 10.0
	if math.Abs(float64(rates["p-f1"])-want) > 1e-6 {
		t.Errorf("rate = %v, want %v", rates["p-f1"], want)
	}
}

// Backfill should hand the slack to released flows, saturating the link.
func TestEchelonMADDBackfill(t *testing.T) {
	g := pipelineGroup(t, "p", 10, 4, 4)
	snap := &Snapshot{
		Now:    0,
		Groups: map[string]*GroupState{"p": {Group: g, Reference: 0}},
	}
	snap.Flows = []*FlowState{{Flow: g.Flows[1], GroupID: "p", Remaining: 4}}
	rates, err := EchelonMADD{Backfill: true}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["p-f1"])-1) > 1e-6 {
		t.Errorf("backfilled rate = %v, want full link", rates["p-f1"])
	}
}

// Two competing groups: the one that can achieve lower tardiness is planned
// first under SmallestTardinessFirst, and the ordering flips under
// LargestTardinessFirst.
func TestEchelonMADDOrdering(t *testing.T) {
	tight := pipelineGroup(t, "tight", 1, 1)   // deadline 0, 1 byte: solo τ = 1
	loose := pipelineGroup(t, "loose", 1, 0.2) // deadline 0, 0.2 bytes: solo τ = 0.2
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"tight": tight, "loose": loose}, nil)
	stf, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// loose is planned first: it takes the link until 0.2; tight is pushed
	// behind it, so tight's rate now is 0.
	if stf["loose-f0"] <= stf["tight-f0"] {
		t.Errorf("stf rates = %v, want loose prioritized", stf)
	}
	ltf, err := EchelonMADD{Order: LargestTardinessFirst}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if ltf["tight-f0"] <= ltf["loose-f0"] {
		t.Errorf("ltf rates = %v, want tight prioritized", ltf)
	}
}

// The motivating example (Fig. 2) at the moment all three flows are
// released: deadlines 0, 7/3, 14/3 (reference 0), remaining volumes 1 each
// on a unit link, now = 1.2. EchelonMADD must keep the earliest-deadline
// flow at full rate.
func TestEchelonMADDFig2Instant(t *testing.T) {
	g := pipelineGroup(t, "p", unit.Time(7.0/3), 1, 1, 1)
	snap := &Snapshot{
		Now:    1.2,
		Groups: map[string]*GroupState{"p": {Group: g, Reference: 0}},
	}
	// f0 partially sent (0.4 remaining is the fair-sharing trace; here use
	// the echelon trace where f0 finished at 1 — so only f1, f2 remain).
	snap.Flows = []*FlowState{
		{Flow: g.Flows[1], GroupID: "p", Remaining: 1, Release: 0.6},
		{Flow: g.Flows[2], GroupID: "p", Remaining: 1, Release: 1.2},
	}
	snap.Groups["p"].AchievedTardiness = 1 // f0 finished at 1, deadline 0
	rates, err := EchelonMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// f1 target: deadline 7/3 + τ(=1) = 10/3; minimal rate 1/(10/3-1.2).
	want1 := 1.0 / (10.0/3 - 1.2)
	if math.Abs(float64(rates["p-f1"])-want1) > 1e-6 {
		t.Errorf("f1 rate = %v, want %v", rates["p-f1"], want1)
	}
	// f2 target: 14/3 + 1 = 17/3; it may share the remaining capacity.
	if rates["p-f2"] < 0 {
		t.Errorf("f2 rate = %v", rates["p-f2"])
	}
}

// minTardiness must report an error when a port has zero capacity.
func TestEchelonMADDZeroCapacity(t *testing.T) {
	net := fabric.NewNetwork()
	if err := net.AddHost("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost("b", 1, 1); err != nil {
		t.Fatal(err)
	}
	g := coflowGroup(t, "g", 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g": g}, nil)
	if _, err := (EchelonMADD{}).Schedule(snap, net); err == nil {
		t.Error("zero-capacity port should fail scheduling")
	}
}

// Mixed coflow + pipeline groups sharing a link must remain feasible and
// deterministic.
func TestEchelonMADDMixedGroupsDeterministic(t *testing.T) {
	cg := coflowGroup(t, "c", 1, 1)
	pg := pipelineGroup(t, "p", 1, 1, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"c": cg, "p": pg}, nil)
	first, err := EchelonMADD{Backfill: true}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := EchelonMADD{Backfill: true}.Schedule(snap, singleLinkNet(t))
		if err != nil {
			t.Fatal(err)
		}
		for id := range first {
			if math.Abs(float64(first[id]-again[id])) > 1e-12 {
				t.Fatalf("nondeterministic rate for %s: %v vs %v", id, first[id], again[id])
			}
		}
	}
}
