package sched

import (
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// pairGroup builds a pipeline group whose flows all run src→dst.
func pairGroup(t *testing.T, id, src, dst string, T unit.Time, sizes ...unit.Bytes) *core.EchelonFlow {
	t.Helper()
	flows := make([]*core.Flow, len(sizes))
	for i, s := range sizes {
		flows[i] = &core.Flow{ID: id + "-f" + string(rune('0'+i)), Src: src, Dst: dst, Size: s, Stage: i}
	}
	g, err := core.New(id, core.Pipeline{T: T}, flows...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// orderedSnapshot builds a snapshot with deterministic flow order (groups in
// the given order), so full-vs-delta comparisons see identical float
// accumulation order.
func orderedSnapshot(t *testing.T, now unit.Time, groups []*core.EchelonFlow, remaining map[string]unit.Bytes) *Snapshot {
	t.Helper()
	snap := &Snapshot{Now: now, Groups: make(map[string]*GroupState)}
	for _, g := range groups {
		snap.Groups[g.ID] = &GroupState{Group: g}
		for _, f := range g.Flows {
			rem, ok := remaining[f.ID]
			if !ok {
				rem = f.Size
			}
			if rem <= 0 {
				continue
			}
			snap.Flows = append(snap.Flows, &FlowState{Flow: f, GroupID: g.ID, Remaining: rem})
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func sameRates(t *testing.T, got, want map[string]unit.Rate, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rates, want %d", context, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: flow %q missing", context, id)
		}
		if g != w {
			t.Errorf("%s: flow %q rate = %v, want %v (bit-equal)", context, id, g, w)
		}
	}
}

// A flow event on a group whose ports are disjoint from every other group
// must patch only that group, and the patch (plus held rates, at a zero-dt
// event) must be bit-equal to a cold full Schedule of the same snapshot.
func TestDeltaApplyDisjointGroupsBitEqual(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c", "d")
	g1 := pairGroup(t, "g1", "a", "b", 2, 2, 2)
	g2 := pairGroup(t, "g2", "c", "d", 3, 1, 4)
	groups := []*core.EchelonFlow{g1, g2}

	d := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	snap1 := orderedSnapshot(t, 0, groups, nil)
	if _, err := d.Schedule(snap1, net); err != nil {
		t.Fatal(err)
	}

	// g1-f0 finishes at the same instant.
	snap2 := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0})
	patch, ok, err := d.Apply(snap2, net, Delta{Groups: []string{"g1"}})
	if err != nil || !ok {
		t.Fatalf("Apply = ok %v err %v (outcome %+v)", ok, err, d.LastOutcome())
	}
	out := d.LastOutcome()
	if !out.Applied || len(out.Replanned) != 1 || out.Replanned[0] != "g1" {
		t.Errorf("outcome = %+v, want replanned [g1]", out)
	}
	if out.Held != 2 {
		t.Errorf("held = %d, want 2 (g2's flows)", out.Held)
	}

	full, err := EchelonMADD{Backfill: true, Cache: NewPlanCache()}.Schedule(snap2, net)
	if err != nil {
		t.Fatal(err)
	}
	sameRates(t, patch, full, "delta patch vs cold full")
}

// Groups sharing a directional port with the changed group must be swept
// into the replanned component; groups outside it are held.
func TestDeltaApplySharedPortComponent(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c", "d", "e")
	g1 := pairGroup(t, "g1", "a", "b", 2, 2, 2)
	g2 := pairGroup(t, "g2", "a", "c", 3, 1, 4) // shares egress(a) with g1
	g3 := pairGroup(t, "g3", "d", "e", 2, 3)
	groups := []*core.EchelonFlow{g1, g2, g3}

	d := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	if _, err := d.Schedule(orderedSnapshot(t, 0, groups, nil), net); err != nil {
		t.Fatal(err)
	}
	snap2 := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0})
	patch, ok, err := d.Apply(snap2, net, Delta{Groups: []string{"g1"}})
	if err != nil || !ok {
		t.Fatalf("Apply = ok %v err %v (outcome %+v)", ok, err, d.LastOutcome())
	}
	out := d.LastOutcome()
	if len(out.Replanned) != 2 || out.Replanned[0] != "g1" || out.Replanned[1] != "g2" {
		t.Errorf("replanned = %v, want [g1 g2]", out.Replanned)
	}
	full, err := EchelonMADD{Backfill: true, Cache: NewPlanCache()}.Schedule(snap2, net)
	if err != nil {
		t.Fatal(err)
	}
	sameRates(t, patch, full, "component patch vs cold full")
}

// A group finishing entirely yields a pure hold patch for the others.
func TestDeltaApplyGroupVanishes(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c", "d")
	g1 := pairGroup(t, "g1", "a", "b", 2, 2)
	g2 := pairGroup(t, "g2", "c", "d", 3, 1, 4)
	groups := []*core.EchelonFlow{g1, g2}

	d := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	r1, err := d.Schedule(orderedSnapshot(t, 0, groups, nil), net)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0})
	patch, ok, err := d.Apply(snap2, net, Delta{Groups: []string{"g1"}})
	if err != nil || !ok {
		t.Fatalf("Apply = ok %v err %v (outcome %+v)", ok, err, d.LastOutcome())
	}
	for _, fs := range snap2.Flows {
		if patch[fs.Flow.ID] != r1[fs.Flow.ID] {
			t.Errorf("flow %q = %v, want held %v", fs.Flow.ID, patch[fs.Flow.ID], r1[fs.Flow.ID])
		}
	}
}

// Every documented fallback invariant must refuse the patch.
func TestDeltaApplyFallbacks(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c", "d")
	g1 := pairGroup(t, "g1", "a", "b", 2, 2, 2)
	g2 := pairGroup(t, "g2", "c", "d", 3, 1, 4)
	groups := []*core.EchelonFlow{g1, g2}
	snap := orderedSnapshot(t, 0, groups, nil)

	// Cold state.
	d := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	if _, ok, _ := d.Apply(snap, net, Delta{Groups: []string{"g1"}}); ok {
		t.Fatal("cold Apply succeeded")
	}
	if r := d.LastOutcome().Reason; r != "cold-state" {
		t.Errorf("reason = %q, want cold-state", r)
	}

	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}

	// Undeclared drift: g2 lost a flow but only g1 is declared.
	drift := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g2-f0": 0})
	if _, ok, _ := d.Apply(drift, net, Delta{Groups: []string{"g1"}}); ok {
		t.Fatal("undeclared drift accepted")
	}
	if r := d.LastOutcome().Reason; r != "undeclared-drift" {
		t.Errorf("reason = %q, want undeclared-drift", r)
	}

	// Fabric generation bump (the capacity-change invariant).
	if err := net.SetCapacity("a", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Apply(snap, net, Delta{Groups: []string{"g1"}}); ok {
		t.Fatal("Apply after SetCapacity succeeded")
	}
	if r := d.LastOutcome().Reason; r != "fabric-generation" {
		t.Errorf("reason = %q, want fabric-generation", r)
	}

	// GlobalEDF has no port-local component.
	ge := NewDelta(EchelonMADD{GlobalEDF: true, Cache: NewPlanCache()})
	if _, err := ge.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ge.Apply(snap, net, Delta{Groups: []string{"g1"}}); ok {
		t.Fatal("GlobalEDF Apply succeeded")
	}
	if r := ge.LastOutcome().Reason; r != "global-edf" {
		t.Errorf("reason = %q, want global-edf", r)
	}

	// Component spanning every group falls back to the pooled full pass.
	shared := []*core.EchelonFlow{
		pairGroup(t, "s1", "a", "b", 2, 2),
		pairGroup(t, "s2", "a", "c", 2, 2), // shares egress(a)
	}
	ds := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	sn := orderedSnapshot(t, 0, shared, nil)
	if _, err := ds.Schedule(sn, net); err != nil {
		t.Fatal(err)
	}
	sn2 := orderedSnapshot(t, 0, shared, map[string]unit.Bytes{"s1-f0": 1})
	if _, ok, _ := ds.Apply(sn2, net, Delta{Groups: []string{"s1"}}); ok {
		t.Fatal("all-spanning component applied")
	}
	if r := ds.LastOutcome().Reason; r != "component-spans-all" {
		t.Errorf("reason = %q, want component-spans-all", r)
	}
}

// Prime must reconstruct state equivalent to having run Schedule: a primed
// wrapper and a scheduled wrapper make identical Apply decisions.
func TestDeltaPrimeMatchesSchedule(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c", "d")
	g1 := pairGroup(t, "g1", "a", "b", 2, 2, 2)
	g2 := pairGroup(t, "g2", "c", "d", 3, 1, 4)
	groups := []*core.EchelonFlow{g1, g2}

	live := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	snap1 := orderedSnapshot(t, 0, groups, nil)
	r1, err := live.Schedule(snap1, net)
	if err != nil {
		t.Fatal(err)
	}

	restored := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	restored.Prime(orderedSnapshot(t, 0, groups, nil), net, r1)

	snap2 := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0})
	pl, okL, errL := live.Apply(snap2, net, Delta{Groups: []string{"g1"}})
	pr, okR, errR := restored.Apply(orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0}), net, Delta{Groups: []string{"g1"}})
	if errL != nil || errR != nil || !okL || !okR {
		t.Fatalf("Apply: live ok %v err %v, restored ok %v err %v", okL, errL, okR, errR)
	}
	sameRates(t, pr, pl, "primed vs live patch")
}

// Rack ports are part of a group's footprint: two groups on disjoint host
// pairs but sharing a rack uplink must land in one component.
func TestDeltaApplyRackComponent(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "a", "b", "c", "d")
	if err := net.AddRack("r1", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddRack("r2", 10, 10); err != nil {
		t.Fatal(err)
	}
	for host, rack := range map[string]string{"a": "r1", "c": "r1", "b": "r2", "d": "r2"} {
		if err := net.AssignRack(host, rack); err != nil {
			t.Fatal(err)
		}
	}
	g1 := pairGroup(t, "g1", "a", "b", 2, 2, 2) // r1 uplink
	g2 := pairGroup(t, "g2", "c", "d", 3, 1, 4) // r1 uplink too
	groups := []*core.EchelonFlow{g1, g2}

	d := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	if _, err := d.Schedule(orderedSnapshot(t, 0, groups, nil), net); err != nil {
		t.Fatal(err)
	}
	snap2 := orderedSnapshot(t, 0, groups, map[string]unit.Bytes{"g1-f0": 0})
	// Both groups share rack r1's uplink: component spans all → fallback.
	if _, ok, _ := d.Apply(snap2, net, Delta{Groups: []string{"g1"}}); ok {
		t.Fatal("rack-coupled component applied as a partial patch")
	}
	if r := d.LastOutcome().Reason; r != "component-spans-all" {
		t.Errorf("reason = %q, want component-spans-all", r)
	}
}
