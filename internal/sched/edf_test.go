package sched

import (
	"testing"

	"echelonflow/internal/core"
)

// EDF gives the link to the flow with the earliest ideal finish time,
// regardless of release order or remaining size.
func TestEDFPrioritizesEarliestDeadline(t *testing.T) {
	early := pipelineGroup(t, "early", 1, 5)
	late := pipelineGroup(t, "late", 1, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"early": early, "late": late}, nil)
	// early's reference 0 => deadline 0; late's reference 10 => deadline 10.
	snap.Groups["late"].Reference = 10
	rates, err := EDF{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if rates["early-f0"] != 1 || rates["late-f0"] != 0 {
		t.Errorf("rates = %v, want earliest deadline to get the link", rates)
	}
}

// Unlike EchelonMADD, EDF never paces: a lone flow with a far deadline
// still transmits at full speed.
func TestEDFDoesNotPace(t *testing.T) {
	g := pipelineGroup(t, "p", 100, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	rates, err := EDF{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if rates["p-f0"] != 1 {
		t.Errorf("rate = %v, want full link", rates["p-f0"])
	}
}

func TestEDFValidates(t *testing.T) {
	g := pipelineGroup(t, "p", 1, 1)
	bad := &Snapshot{
		Groups: map[string]*GroupState{},
		Flows:  []*FlowState{{Flow: g.Flows[0], GroupID: "ghost", Remaining: 1}},
	}
	if _, err := (EDF{}).Schedule(bad, singleLinkNet(t)); err == nil {
		t.Error("invalid snapshot accepted")
	}
}
