package sched

import (
	"math"
	"reflect"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// flowDesc is a compact flow description for the baseline tables.
type flowDesc struct {
	id       string
	src, dst string
	rem      unit.Bytes
	release  unit.Time
}

// baselineSnapshot wraps each flow in its own singleton coflow — grouping is
// irrelevant to the group-oblivious baselines — and validates the result.
func baselineSnapshot(t *testing.T, now unit.Time, flows []flowDesc) *Snapshot {
	t.Helper()
	snap := &Snapshot{Now: now, Groups: make(map[string]*GroupState)}
	for _, d := range flows {
		f := &core.Flow{ID: d.id, Src: d.src, Dst: d.dst, Size: d.rem}
		g, err := core.NewCoflow("flow:"+d.id, f)
		if err != nil {
			t.Fatal(err)
		}
		snap.Groups[g.ID] = &GroupState{Group: g, Reference: d.release}
		snap.Flows = append(snap.Flows, &FlowState{
			Flow: f, GroupID: g.ID, Remaining: d.rem, Release: d.release,
		})
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestBaselineSchedulers(t *testing.T) {
	type hostDesc struct {
		name       string
		egress, in unit.Rate
	}
	cases := []struct {
		name  string
		hosts []hostDesc
		flows []flowDesc
		want  map[string]map[string]unit.Rate // scheduler name -> flow -> rate
	}{
		{
			// A host with zero capacity gets a zero allocation without
			// starving flows elsewhere on the fabric.
			name: "zero capacity host",
			hosts: []hostDesc{
				{"z", 0, 0}, {"a", 2, 2}, {"b", 2, 2},
			},
			flows: []flowDesc{
				{id: "dead", src: "z", dst: "b", rem: 1, release: 0},
				{id: "live", src: "a", dst: "b", rem: 5, release: 1},
			},
			want: map[string]map[string]unit.Rate{
				"fair": {"dead": 0, "live": 2},
				"srpt": {"dead": 0, "live": 2},
				"fifo": {"dead": 0, "live": 2},
			},
		},
		{
			// Single-flow degenerate case: every baseline saturates the
			// bottleneck port (ingress 1 here, below egress 3).
			name:  "single flow",
			hosts: []hostDesc{{"a", 3, 3}, {"b", 3, 1}},
			flows: []flowDesc{{id: "only", src: "a", dst: "b", rem: 7, release: 0}},
			want: map[string]map[string]unit.Rate{
				"fair": {"only": 1},
				"srpt": {"only": 1},
				"fifo": {"only": 1},
			},
		},
		{
			// Two flows share one link. Fair splits; SRPT gives the link to
			// the smaller remaining volume; FIFO to the earlier release.
			name:  "contended link",
			hosts: []hostDesc{{"a", 2, 2}, {"b", 2, 2}},
			flows: []flowDesc{
				{id: "big-early", src: "a", dst: "b", rem: 9, release: 0},
				{id: "small-late", src: "a", dst: "b", rem: 1, release: 5},
			},
			want: map[string]map[string]unit.Rate{
				"fair": {"big-early": 1, "small-late": 1},
				"srpt": {"big-early": 0, "small-late": 2},
				"fifo": {"big-early": 2, "small-late": 0},
			},
		},
		{
			// Exact ties in remaining volume and release time: sortedCopy
			// breaks ties by flow ID, so the lexicographically smaller ID wins
			// the greedy fill in SRPT and FIFO.
			name:  "tie broken by flow ID",
			hosts: []hostDesc{{"a", 4, 4}, {"b", 4, 4}},
			flows: []flowDesc{
				{id: "y", src: "a", dst: "b", rem: 3, release: 1},
				{id: "x", src: "a", dst: "b", rem: 3, release: 1},
			},
			want: map[string]map[string]unit.Rate{
				"fair": {"x": 2, "y": 2},
				"srpt": {"x": 4, "y": 0},
				"fifo": {"x": 4, "y": 0},
			},
		},
		{
			// Disjoint links: nobody should be throttled by anyone else.
			name: "disjoint links",
			hosts: []hostDesc{
				{"a", 1, 1}, {"b", 1, 1}, {"c", 3, 3}, {"d", 3, 3},
			},
			flows: []flowDesc{
				{id: "ab", src: "a", dst: "b", rem: 2, release: 0},
				{id: "cd", src: "c", dst: "d", rem: 2, release: 0},
			},
			want: map[string]map[string]unit.Rate{
				"fair": {"ab": 1, "cd": 3},
				"srpt": {"ab": 1, "cd": 3},
				"fifo": {"ab": 1, "cd": 3},
			},
		},
	}

	schedulers := []Scheduler{Fair{}, SRPT{}, FIFO{}}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			net := fabric.NewNetwork()
			for _, h := range tc.hosts {
				if err := net.AddHost(h.name, h.egress, h.in); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range schedulers {
				want, ok := tc.want[s.Name()]
				if !ok {
					t.Fatalf("no expectation for scheduler %s", s.Name())
				}
				snap := baselineSnapshot(t, 10, tc.flows)
				rates, err := s.Schedule(snap, net)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if len(rates) != len(tc.flows) {
					t.Errorf("%s: got %d rates, want one per flow (%d)", s.Name(), len(rates), len(tc.flows))
				}
				for id, w := range want {
					got, ok := rates[id]
					if !ok {
						t.Errorf("%s: no rate entry for %s", s.Name(), id)
						continue
					}
					if math.Abs(float64(got-w)) > 1e-9 {
						t.Errorf("%s: flow %s rate %v, want %v", s.Name(), id, got, w)
					}
				}
			}
		})
	}
}

// TestBaselineSchedulersDeterministic pins repeat-call determinism: the same
// snapshot must yield the identical allocation on every invocation, even
// with tied keys, because the coordinator diff harness compares runs
// bit-for-bit.
func TestBaselineSchedulersDeterministic(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "a", "b", "c")
	flows := []flowDesc{
		{id: "f1", src: "a", dst: "b", rem: 2, release: 1},
		{id: "f0", src: "a", dst: "b", rem: 2, release: 1},
		{id: "f2", src: "c", dst: "b", rem: 2, release: 1},
	}
	for _, s := range []Scheduler{Fair{}, SRPT{}, FIFO{}} {
		first, err := s.Schedule(baselineSnapshot(t, 3, flows), net)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i := 0; i < 20; i++ {
			again, err := s.Schedule(baselineSnapshot(t, 3, flows), net)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: allocation changed between calls: %v vs %v", s.Name(), first, again)
			}
		}
	}
}

// TestBaselineSchedulersEmptySnapshot pins the no-flows degenerate case:
// an empty, non-nil rate map.
func TestBaselineSchedulersEmptySnapshot(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	for _, s := range []Scheduler{Fair{}, SRPT{}, FIFO{}} {
		rates, err := s.Schedule(&Snapshot{Now: 0}, net)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if rates == nil || len(rates) != 0 {
			t.Errorf("%s: want empty non-nil map, got %v", s.Name(), rates)
		}
	}
}
