package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// slowScheduler blocks each Schedule call until released (or for a fixed
// delay), counting calls.
type slowScheduler struct {
	mu    sync.Mutex
	calls int
	delay time.Duration
	fail  bool
}

func (s *slowScheduler) Name() string { return "slow" }

func (s *slowScheduler) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	s.mu.Lock()
	s.calls++
	d, fail := s.delay, s.fail
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if fail {
		return nil, fmt.Errorf("slow failure")
	}
	rates := zeroFill(snap)
	for id := range rates {
		rates[id] = 42 // distinguishable from the Fair fallback
	}
	return rates, nil
}

func (s *slowScheduler) setDelay(d time.Duration) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

func (s *slowScheduler) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestWithDeadlineZeroBudgetIsIdentity(t *testing.T) {
	s := &slowScheduler{}
	if got := WithDeadline(s, DeadlineOptions{}); got != Scheduler(s) {
		t.Error("zero budget should return the scheduler unchanged")
	}
	if got := WithDeadline(nil, DeadlineOptions{Budget: time.Second}); got != nil {
		t.Error("nil scheduler should pass through")
	}
}

func TestDeadlineIdentityWhenInBudget(t *testing.T) {
	s := &slowScheduler{}
	d := WithDeadline(s, DeadlineOptions{Budget: time.Second})
	if d.Name() != "slow+deadline" {
		t.Errorf("name = %q", d.Name())
	}
	snap, net := instrumentSnapshot(t)
	rates, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if rates["f"] != 42 {
		t.Errorf("rates[f] = %v, want the primary scheduler's 42", rates["f"])
	}
	ctl := d.(DegradeControl)
	if ctl.Degraded() {
		t.Error("in-budget pass must not be degraded")
	}
	if out := ctl.LastDegrade(); out.Degraded || out.Reason != "" {
		t.Errorf("outcome = %+v, want clean", out)
	}
}

func TestDeadlineOverrunFallsBackToFair(t *testing.T) {
	s := &slowScheduler{delay: 200 * time.Millisecond}
	d := WithDeadline(s, DeadlineOptions{Budget: 10 * time.Millisecond, TripAfter: 100})
	snap, net := instrumentSnapshot(t)
	rates, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	// Fair max-min on one 100-capacity pair gives the single flow 100.
	if rates["f"] != 100 {
		t.Errorf("rates[f] = %v, want max-min fallback 100", rates["f"])
	}
	ctl := d.(DegradeControl)
	out := ctl.LastDegrade()
	if !out.Degraded || out.Reason != "overrun" {
		t.Errorf("outcome = %+v, want degraded overrun", out)
	}
	if !ctl.Degraded() {
		t.Error("wrapper must report degraded after an overrun")
	}
	// The abandoned pass is still holding the slot: an immediate retry
	// sheds with reason "busy" instead of queueing.
	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if out := ctl.LastDegrade(); out.Reason != "busy" {
		t.Errorf("retry reason = %q, want busy", out.Reason)
	}
	ctl.Quiesce() // drain the abandoned pass before the test exits
}

func TestDeadlineErrorFallsBack(t *testing.T) {
	s := &slowScheduler{fail: true}
	d := WithDeadline(s, DeadlineOptions{Budget: time.Second, TripAfter: 100})
	snap, net := instrumentSnapshot(t)
	rates, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if rates["f"] != 100 {
		t.Errorf("rates[f] = %v, want fallback 100", rates["f"])
	}
	if out := d.(DegradeControl).LastDegrade(); out.Reason != "error" {
		t.Errorf("reason = %q, want error", out.Reason)
	}
}

func TestDeadlineBreakerTripsAndRecovers(t *testing.T) {
	s := &slowScheduler{}
	var outcomes []DegradeOutcome
	var omu sync.Mutex
	d := WithDeadline(s, DeadlineOptions{
		Budget:    20 * time.Millisecond,
		TripAfter: 2,
		Cooldown:  400 * time.Millisecond,
		Observer: func(o DegradeOutcome) {
			omu.Lock()
			outcomes = append(outcomes, o)
			omu.Unlock()
		},
	})
	ctl := d.(DegradeControl)
	snap, net := instrumentSnapshot(t)

	ctl.SetStall(100 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := d.Schedule(snap, net); err != nil {
			t.Fatal(err)
		}
		ctl.Quiesce() // let each abandoned pass drain so both count as overruns
	}
	out := ctl.LastDegrade()
	if !out.BreakerOpen {
		t.Fatalf("breaker should be open after 2 overruns, outcome %+v", out)
	}
	// While open (and before the cooldown elapses) calls shed without
	// touching the primary.
	before := s.callCount()
	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if got := ctl.LastDegrade(); got.Reason != "breaker-open" {
		t.Errorf("reason = %q, want breaker-open", got.Reason)
	}
	if s.callCount() != before {
		t.Error("breaker-open call must not invoke the primary")
	}

	// After the cooldown the next call probes; with the stall cleared the
	// probe succeeds and closes the breaker.
	ctl.SetStall(0)
	time.Sleep(420 * time.Millisecond)
	rates, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if rates["f"] != 42 {
		t.Errorf("probe rates[f] = %v, want primary 42", rates["f"])
	}
	if ctl.Degraded() {
		t.Error("breaker should be closed after a successful probe")
	}
	omu.Lock()
	last := outcomes[len(outcomes)-1]
	omu.Unlock()
	if last.Degraded {
		t.Errorf("observer's last outcome = %+v, want recovery", last)
	}
}

func TestDeadlineDeltaGatesApplyAfterDegrade(t *testing.T) {
	inner := NewDelta(EchelonMADD{Backfill: true, Cache: NewPlanCache()})
	d := WithDeadline(inner, DeadlineOptions{Budget: 50 * time.Millisecond, TripAfter: 100})
	dd, ok := d.(DeltaScheduler)
	if !ok {
		t.Fatal("wrapping a DeltaScheduler must preserve the incremental API")
	}
	if _, ok := d.(interface{ PlanCache() *PlanCache }); !ok {
		t.Fatal("wrapper must forward PlanCache")
	}
	ctl := d.(DegradeControl)
	snap, net := instrumentSnapshot(t)

	// Clean full pass primes the delta path: Apply patches.
	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := dd.Apply(snap, net, Delta{Groups: []string{"g"}}); err != nil || !ok {
		t.Fatalf("clean Apply: ok=%v err=%v, want applied", ok, err)
	}

	// A degraded full pass gates Apply until the next clean full pass.
	ctl.SetStall(200 * time.Millisecond)
	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	ctl.Quiesce()
	ctl.SetStall(0)
	if _, ok, _ := dd.Apply(snap, net, Delta{Groups: []string{"g"}}); ok {
		t.Fatal("Apply must be gated after a degraded pass")
	}
	if out := ctl.LastDegrade(); out.Reason != "apply-gated" {
		t.Errorf("reason = %q, want apply-gated", out.Reason)
	}
	if _, err := d.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := dd.Apply(snap, net, Delta{Groups: []string{"g"}}); err != nil || !ok {
		t.Fatalf("post-recovery Apply: ok=%v err=%v, want applied", ok, err)
	}
}

func TestDeadlinePlainSchedulerDoesNotExposeDelta(t *testing.T) {
	d := WithDeadline(&slowScheduler{}, DeadlineOptions{Budget: time.Second})
	if _, ok := d.(DeltaScheduler); ok {
		t.Error("a plain scheduler's deadline wrapper must not satisfy DeltaScheduler")
	}
}
