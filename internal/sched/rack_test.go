package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// rackNet builds 2 racks × 2 hosts with NIC 4 and uplink/downlink 2.
func rackNet(t *testing.T) *fabric.Network {
	t.Helper()
	n := fabric.NewNetwork()
	n.AddUniformHosts(4, "a1", "a2", "b1", "b2")
	for _, r := range []string{"A", "B"} {
		if err := n.AddRack(r, 2, 2); err != nil {
			t.Fatal(err)
		}
	}
	for host, rack := range map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"} {
		if err := n.AssignRack(host, rack); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// EchelonMADD must respect uplink capacity: a cross-rack coflow's pace is
// set by the uplink, not the NICs.
func TestEchelonMADDRackBottleneck(t *testing.T) {
	net := rackNet(t)
	g, err := core.NewCoflow("c",
		&core.Flow{ID: "x", Src: "a1", Dst: "b1", Size: 4},
		&core.Flow{ID: "y", Src: "a2", Dst: "b2", Size: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{"c": {Group: g}}}
	for _, f := range g.Flows {
		snap.Flows = append(snap.Flows, &FlowState{Flow: f, GroupID: "c", Remaining: f.Size})
	}
	rates, err := (EchelonMADD{}).Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	// Uplink A carries 8 bytes at 2 B/s: Γ = 4, MADD rates 1 each.
	if math.Abs(float64(rates["x"])-1) > 1e-6 || math.Abs(float64(rates["y"])-1) > 1e-6 {
		t.Errorf("rates = %v, want 1 each (uplink-paced)", rates)
	}
	if err := net.Feasible(requestsOf(snap.Flows), rates); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

// Intra-rack flows must not be throttled by the uplink that cross-rack
// flows saturate.
func TestEchelonMADDIntraRackUnaffected(t *testing.T) {
	net := rackNet(t)
	cross, _ := core.NewCoflow("cross", &core.Flow{ID: "x", Src: "a1", Dst: "b1", Size: 100})
	intra, _ := core.NewCoflow("intra", &core.Flow{ID: "z", Src: "a2", Dst: "a1", Size: 1})
	snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{
		"cross": {Group: cross}, "intra": {Group: intra},
	}}
	snap.Flows = []*FlowState{
		{Flow: cross.Flows[0], GroupID: "cross", Remaining: 100},
		{Flow: intra.Flows[0], GroupID: "intra", Remaining: 1},
	}
	rates, err := (EchelonMADD{Backfill: true}).Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if rates["z"] <= 0 {
		t.Errorf("intra-rack flow starved: %v", rates)
	}
	if rates["x"] > 2+1e-6 {
		t.Errorf("cross-rack flow exceeds uplink: %v", rates["x"])
	}
	if err := net.Feasible(requestsOf(snap.Flows), rates); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

// Property: every scheduler stays feasible on random two-rack scenarios.
func TestSchedulersRackFeasibleProperty(t *testing.T) {
	schedulers := allSchedulers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := fabric.NewNetwork()
		hosts := []string{"a1", "a2", "b1", "b2"}
		net.AddUniformHosts(unit.Rate(1+3*rng.Float64()), hosts...)
		_ = net.AddRack("A", unit.Rate(0.5+rng.Float64()), unit.Rate(0.5+rng.Float64()))
		_ = net.AddRack("B", unit.Rate(0.5+rng.Float64()), unit.Rate(0.5+rng.Float64()))
		for host, rack := range map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"} {
			_ = net.AssignRack(host, rack)
		}
		snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{}}
		groupCount := 1 + rng.Intn(3)
		for gi := 0; gi < groupCount; gi++ {
			gid := fmt.Sprintf("g%d", gi)
			var flows []*core.Flow
			for fi := 0; fi < 1+rng.Intn(4); fi++ {
				s := rng.Intn(4)
				d := rng.Intn(4)
				if s == d {
					d = (d + 1) % 4
				}
				flows = append(flows, &core.Flow{
					ID:  fmt.Sprintf("%sf%d", gid, fi),
					Src: hosts[s], Dst: hosts[d],
					Size: unit.Bytes(0.5 + 3*rng.Float64()), Stage: fi,
				})
			}
			g, err := core.New(gid, core.Pipeline{T: unit.Time(rng.Float64())}, flows...)
			if err != nil {
				return false
			}
			snap.Groups[gid] = &GroupState{Group: g}
			for _, fl := range flows {
				snap.Flows = append(snap.Flows, &FlowState{Flow: fl, GroupID: gid, Remaining: fl.Size})
			}
		}
		reqs := requestsOf(snap.Flows)
		for _, s := range schedulers {
			rates, err := s.Schedule(snap, net)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, s.Name(), err)
				return false
			}
			if err := net.Feasible(reqs, rates); err != nil {
				t.Logf("seed %d: %s infeasible: %v", seed, s.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
