package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// rackNet builds 2 racks × 2 hosts with NIC 4 and uplink/downlink 2.
func rackNet(t *testing.T) *fabric.Network {
	t.Helper()
	n := fabric.NewNetwork()
	n.AddUniformHosts(4, "a1", "a2", "b1", "b2")
	for _, r := range []string{"A", "B"} {
		if err := n.AddRack(r, 2, 2); err != nil {
			t.Fatal(err)
		}
	}
	for host, rack := range map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"} {
		if err := n.AssignRack(host, rack); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// EchelonMADD must respect uplink capacity: a cross-rack coflow's pace is
// set by the uplink, not the NICs.
func TestEchelonMADDRackBottleneck(t *testing.T) {
	net := rackNet(t)
	g, err := core.NewCoflow("c",
		&core.Flow{ID: "x", Src: "a1", Dst: "b1", Size: 4},
		&core.Flow{ID: "y", Src: "a2", Dst: "b2", Size: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{"c": {Group: g}}}
	for _, f := range g.Flows {
		snap.Flows = append(snap.Flows, &FlowState{Flow: f, GroupID: "c", Remaining: f.Size})
	}
	rates, err := (EchelonMADD{}).Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	// Uplink A carries 8 bytes at 2 B/s: Γ = 4, MADD rates 1 each.
	if math.Abs(float64(rates["x"])-1) > 1e-6 || math.Abs(float64(rates["y"])-1) > 1e-6 {
		t.Errorf("rates = %v, want 1 each (uplink-paced)", rates)
	}
	if err := net.Feasible(requestsOf(snap.Flows), rates); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

// Intra-rack flows must not be throttled by the uplink that cross-rack
// flows saturate.
func TestEchelonMADDIntraRackUnaffected(t *testing.T) {
	net := rackNet(t)
	cross, _ := core.NewCoflow("cross", &core.Flow{ID: "x", Src: "a1", Dst: "b1", Size: 100})
	intra, _ := core.NewCoflow("intra", &core.Flow{ID: "z", Src: "a2", Dst: "a1", Size: 1})
	snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{
		"cross": {Group: cross}, "intra": {Group: intra},
	}}
	snap.Flows = []*FlowState{
		{Flow: cross.Flows[0], GroupID: "cross", Remaining: 100},
		{Flow: intra.Flows[0], GroupID: "intra", Remaining: 1},
	}
	rates, err := (EchelonMADD{Backfill: true}).Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if rates["z"] <= 0 {
		t.Errorf("intra-rack flow starved: %v", rates)
	}
	if rates["x"] > 2+1e-6 {
		t.Errorf("cross-rack flow exceeds uplink: %v", rates["x"])
	}
	if err := net.Feasible(requestsOf(snap.Flows), rates); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

// Property: every scheduler stays feasible on random two-rack scenarios.
func TestSchedulersRackFeasibleProperty(t *testing.T) {
	schedulers := allSchedulers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := fabric.NewNetwork()
		hosts := []string{"a1", "a2", "b1", "b2"}
		net.AddUniformHosts(unit.Rate(1+3*rng.Float64()), hosts...)
		_ = net.AddRack("A", unit.Rate(0.5+rng.Float64()), unit.Rate(0.5+rng.Float64()))
		_ = net.AddRack("B", unit.Rate(0.5+rng.Float64()), unit.Rate(0.5+rng.Float64()))
		for host, rack := range map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"} {
			_ = net.AssignRack(host, rack)
		}
		snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{}}
		groupCount := 1 + rng.Intn(3)
		for gi := 0; gi < groupCount; gi++ {
			gid := fmt.Sprintf("g%d", gi)
			var flows []*core.Flow
			for fi := 0; fi < 1+rng.Intn(4); fi++ {
				s := rng.Intn(4)
				d := rng.Intn(4)
				if s == d {
					d = (d + 1) % 4
				}
				flows = append(flows, &core.Flow{
					ID:  fmt.Sprintf("%sf%d", gid, fi),
					Src: hosts[s], Dst: hosts[d],
					Size: unit.Bytes(0.5 + 3*rng.Float64()), Stage: fi,
				})
			}
			g, err := core.New(gid, core.Pipeline{T: unit.Time(rng.Float64())}, flows...)
			if err != nil {
				return false
			}
			snap.Groups[gid] = &GroupState{Group: g}
			for _, fl := range flows {
				snap.Flows = append(snap.Flows, &FlowState{Flow: fl, GroupID: gid, Remaining: fl.Size})
			}
		}
		reqs := requestsOf(snap.Flows)
		for _, s := range schedulers {
			rates, err := s.Schedule(snap, net)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, s.Name(), err)
				return false
			}
			if err := net.Feasible(reqs, rates); err != nil {
				t.Logf("seed %d: %s infeasible: %v", seed, s.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// ReassignRack must invalidate every cached planning artifact: the PlanCache
// epoch (keyed on Generation) and the delta scheduler's incremental state.
// A stale footprint after a host move would patch against the wrong uplinks.
func TestReassignRackDiscardsCachedState(t *testing.T) {
	net := rackNet(t)
	cache := NewPlanCache()
	d := NewDelta(EchelonMADD{Backfill: true, Cache: cache})

	g, err := core.NewCoflow("c",
		&core.Flow{ID: "x", Src: "a1", Dst: "b1", Size: 100},
		&core.Flow{ID: "y", Src: "a2", Dst: "b2", Size: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Now: 0, Groups: map[string]*GroupState{"c": {Group: g}}}
	for _, f := range g.Flows {
		snap.Flows = append(snap.Flows, &FlowState{Flow: f, GroupID: "c", Remaining: f.Size})
	}

	before, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Entries == 0 {
		t.Fatal("warm-up pass stored no plan cache entries")
	}
	if _, ok, _ := d.Apply(snap, net, Delta{}); !ok {
		t.Fatalf("warm delta state rejected a no-op event: %+v", d.LastOutcome())
	}

	// Move b1 into rack A: x becomes intra-rack, so its uplink ceiling (2)
	// no longer applies.
	if err := net.ReassignRack("b1", "A"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Apply(snap, net, Delta{}); ok {
		t.Fatal("delta patch applied across a rack move")
	}
	if got := d.LastOutcome().Reason; got != "fabric-generation" {
		t.Errorf("fallback reason = %q, want fabric-generation", got)
	}

	after, err := d.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := (EchelonMADD{Backfill: true}).Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range cold {
		if after[id] != r {
			t.Errorf("post-move rate for %s = %v, cold scheduler says %v (stale cache?)", id, after[id], r)
		}
	}
	if after["x"] == before["x"] {
		t.Errorf("rate for x unchanged (%v) by the rack move; topology change not observed", after["x"])
	}
}

// residualGamma must agree across fabric backends when the interior links
// cannot bind: a rackless big switch and a leaf-spine with non-binding
// uplinks describe the same capacity region, so SEBF ordering (and with it
// every CoflowMADD decision) is backend-independent.
func TestResidualGammaBackendAgreement(t *testing.T) {
	hosts := []string{"a1", "a2", "b1", "b2"}
	big := fabric.NewNetwork()
	big.AddUniformHosts(4, hosts...)

	ls, err := fabric.NewLeafSpine(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if err := ls.AddLeaf("L-"+h, 1e300, 1e300); err != nil {
			t.Fatal(err)
		}
		if err := ls.AddHost(h, "L-"+h, 4, 4); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var flows []*FlowState
		for fi := 0; fi < 1+rng.Intn(5); fi++ {
			s, d := rng.Intn(4), rng.Intn(4)
			if s == d {
				d = (d + 1) % 4
			}
			flows = append(flows, &FlowState{
				Flow:      &core.Flow{ID: fmt.Sprintf("f%d", fi), Src: hosts[s], Dst: hosts[d]},
				Remaining: unit.Bytes(0.5 + 5*rng.Float64()),
			})
		}
		gBig := residualGamma(flows, big.NewResidual(), big)
		gLeaf := residualGamma(flows, ls.NewResidual(), ls)
		if gBig != gLeaf {
			t.Fatalf("trial %d: residualGamma %v (bigswitch) vs %v (leafspine)", trial, gBig, gLeaf)
		}
		tBig, err1 := big.BottleneckTime(volumesOf(flows))
		tLeaf, err2 := ls.BottleneckTime(volumesOf(flows))
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: bottleneck errors %v / %v", trial, err1, err2)
		}
		if tBig != tLeaf {
			t.Fatalf("trial %d: BottleneckTime %v vs %v", trial, tBig, tLeaf)
		}
	}
}
