package sched

import (
	"sort"
	"sync"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// PlanCache memoizes EchelonMADD's per-group solo-tardiness rankings across
// Schedule calls. Ranking dominates the scheduler's cost — every event
// replans every group alone on the full fabric — yet between consecutive
// events most groups are unchanged and on schedule, so their ranking metric
// is provably the same value the seed scheduler would recompute.
//
// A cached entry is reused only when equivalence is exact, never merely
// approximate:
//
//   - the group's flow set is identical (same flow IDs; flow deadlines are
//     fixed once the group's reference time is observed),
//   - the tardiness floor (achieved tardiness) is bitwise equal,
//   - the fabric has not mutated since the entry was stored (tracked by
//     Fabric.Generation), and
//   - either the snapshot time and every remaining volume are bitwise equal
//     (zero-dt event cascades), or the entry was on schedule (solo tardiness
//     exactly equal to its floor) and every flow's remaining volume is at or
//     ahead of the cached solo plan's fluid-model pace. The paced MADD
//     planner gives a group the minimum allocation meeting its floored
//     deadlines, so a group at or ahead of its own solo pace still achieves
//     exactly the floor when replanned alone: the recomputed metric equals
//     the cached one.
//
// "Ahead of pace" tolerates only unit.Eps-scale fluid-model drift — the same
// tolerance the simulator and coordinator use when advancing volumes — so a
// genuinely stalled or newly loaded flow always misses.
//
// Lookups that fail any test fall through to a real planning pass and the
// fresh result replaces the entry. Entries for departed groups are pruned on
// every Schedule call; group IDs never recur in this system, but pruning
// keeps the cache bounded by the live group count regardless.
//
// A PlanCache is safe for concurrent use. The zero value of *PlanCache (nil)
// is a valid always-miss cache, so EchelonMADD works unchanged without one.
type PlanCache struct {
	mu      sync.Mutex
	net     fabric.Fabric
	netGen  uint64
	entries map[string]*planEntry

	hits, misses, invalidations uint64
}

// planEntry captures one group's solo ranking at the moment it was computed.
type planEntry struct {
	at         unit.Time
	tau        unit.Time
	floor      unit.Time
	onSchedule bool
	// remaining holds each member flow's remaining volume at time at;
	// plans holds the solo plan's fill segments per flow, the pace the
	// group must hold for the entry to stay valid.
	remaining map[string]unit.Bytes
	plans     map[string][]fillSegment
}

// NewPlanCache returns an empty cache ready to be shared by every copy of an
// EchelonMADD scheduler (and by the sim/coordinator invalidation hooks).
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*planEntry)}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Entries       int
}

// Stats returns current counters.
func (c *PlanCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations, Entries: len(c.entries)}
}

// InvalidateGroup drops the entry for one group (flow released, finished, or
// group membership changed).
func (c *PlanCache) InvalidateGroup(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; ok {
		delete(c.entries, id)
		c.invalidations++
	}
}

// InvalidateAll drops every entry (capacity change, session loss, or any
// event whose scope is unclear).
func (c *PlanCache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 {
		c.invalidations += uint64(len(c.entries))
		clear(c.entries)
	}
}

// lookup returns the cached solo tardiness for a group when the entry is
// provably equivalent to what a fresh planning pass would produce.
func (c *PlanCache) lookup(snap *Snapshot, net fabric.Fabric, id string, flows []*FlowState, floor unit.Time) (unit.Time, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net != net || c.netGen != net.Generation() {
		// Any fabric mutation (capacity or topology) retires the whole
		// epoch; store() resets it.
		c.misses++
		return 0, false
	}
	e := c.entries[id]
	if e == nil || e.floor != floor || len(e.remaining) != len(flows) {
		c.misses++
		return 0, false
	}
	if snap.Now == e.at {
		// Same instant (zero-dt event cascade): exact when volumes match.
		for _, fs := range flows {
			r, ok := e.remaining[fs.Flow.ID]
			if !ok || r != fs.Remaining {
				c.misses++
				return 0, false
			}
		}
		c.hits++
		return e.tau, true
	}
	if snap.Now < e.at || !e.onSchedule {
		c.misses++
		return 0, false
	}
	// Later event, entry was on schedule (tau == floor): the ranking holds
	// as long as every flow is at or ahead of the cached solo plan's pace —
	// the paced planner then still meets every floored deadline, and the
	// floor is a lower bound, so the recomputed tau is again exactly floor.
	for _, fs := range flows {
		r0, ok := e.remaining[fs.Flow.ID]
		if !ok {
			c.misses++
			return 0, false
		}
		pred := r0 - plannedVolume(e.plans[fs.Flow.ID], snap.Now)
		if pred < 0 {
			pred = 0
		}
		tol := unit.Bytes(unit.Eps * (1 + float64(r0)))
		if fs.Remaining > pred+tol {
			c.misses++
			return 0, false
		}
	}
	c.hits++
	return e.tau, true
}

// store records a freshly computed solo ranking. A fabric generation change
// opens a new epoch, discarding every stale entry.
func (c *PlanCache) store(snap *Snapshot, net fabric.Fabric, id string, flows []*FlowState, floor, tau unit.Time, plans map[string][]fillSegment) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net != net || c.netGen != net.Generation() {
		c.net, c.netGen = net, net.Generation()
		clear(c.entries)
	}
	rem := make(map[string]unit.Bytes, len(flows))
	for _, fs := range flows {
		rem[fs.Flow.ID] = fs.Remaining
	}
	c.entries[id] = &planEntry{
		at:         snap.Now,
		tau:        tau,
		floor:      floor,
		onSchedule: tau == floor,
		remaining:  rem,
		plans:      plans,
	}
}

// prune drops entries for groups absent from the current snapshot. ids is
// the complete set of live groups — callers holding only a subset (e.g. the
// delta path's component) must not prune, or live entries would be evicted
// and masquerade as cache misses. ids should be sorted ascending
// (groupedFlows guarantees this); an unsorted slice would silently break
// the binary search below, so it is detected and a sorted copy used.
func (c *PlanCache) prune(ids []string) {
	if c == nil {
		return
	}
	if !sort.StringsAreSorted(ids) {
		ids = append([]string(nil), ids...)
		sort.Strings(ids)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id := range c.entries {
		i := sort.SearchStrings(ids, id)
		if i >= len(ids) || ids[i] != id {
			delete(c.entries, id)
		}
	}
}

// plannedVolume integrates a solo plan's fill segments up to upto: the bytes
// the fluid model would have transmitted by that time.
func plannedVolume(segs []fillSegment, upto unit.Time) unit.Bytes {
	var vol unit.Bytes
	for _, seg := range segs {
		if seg.from >= upto {
			break
		}
		end := seg.to
		if end > upto {
			end = upto
		}
		vol += seg.rate.Over(end - seg.from)
	}
	return vol
}
