package sched

import (
	"sync"
	"time"

	"echelonflow/internal/fabric"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

// Instrumented wraps a Scheduler with telemetry: a latency histogram and
// call/error counters per Schedule invocation, plus PlanCache hit/miss/
// invalidation counters when the wrapped scheduler exposes a cache. Create
// with Instrument.
type Instrumented struct {
	inner Scheduler
	lat   *telemetry.Histogram
	calls *telemetry.Counter
	errs  *telemetry.Counter

	// Cache counters export deltas of the PlanCache's cumulative stats,
	// sampled after each Schedule call under mu.
	hits, misses, invals *telemetry.Counter
	mu                   sync.Mutex
	last                 CacheStats
}

// Instrument wraps s with telemetry recorded into reg. A nil registry
// returns s unchanged, so the unconfigured path has zero overhead — the
// acceptance bar for BenchmarkSchedule_* staying within noise of
// BENCH_sched.json. The latency histogram family is registered eagerly so
// /metrics exposes it before the first scheduling decision.
func Instrument(s Scheduler, reg *telemetry.Registry) Scheduler {
	if reg == nil || s == nil {
		return s
	}
	name := s.Name()
	in := &Instrumented{
		inner: s,
		lat: reg.Histogram("echelon_schedule_seconds",
			"Latency of Scheduler.Schedule calls.", "scheduler", name),
		calls: reg.Counter("echelon_schedule_calls_total",
			"Total Scheduler.Schedule invocations.", "scheduler", name),
		errs: reg.Counter("echelon_schedule_errors_total",
			"Schedule invocations that returned an error.", "scheduler", name),
	}
	if in.PlanCache() != nil {
		in.hits = reg.Counter("echelon_plan_cache_hits_total",
			"PlanCache lookups reusing a memoized solo ranking.", "scheduler", name)
		in.misses = reg.Counter("echelon_plan_cache_misses_total",
			"PlanCache lookups that fell through to a planning pass.", "scheduler", name)
		in.invals = reg.Counter("echelon_plan_cache_invalidations_total",
			"PlanCache entries dropped by lifecycle invalidation.", "scheduler", name)
	}
	if ds, ok := s.(DeltaScheduler); ok {
		// Keep the incremental API reachable through the wrapper, but only
		// when the wrapped scheduler actually implements it — a plain
		// Instrumented must not satisfy DeltaScheduler by accident.
		return &InstrumentedDelta{Instrumented: in, delta: ds}
	}
	return in
}

// InstrumentedDelta is an Instrumented whose wrapped scheduler also
// implements DeltaScheduler; it forwards Apply and Prime, timing Apply with
// the same latency histogram as Schedule.
type InstrumentedDelta struct {
	*Instrumented
	delta DeltaScheduler
}

// Apply implements DeltaScheduler.
func (i *InstrumentedDelta) Apply(snap *Snapshot, net fabric.Fabric, d Delta) (map[string]unit.Rate, bool, error) {
	t0 := time.Now()
	rates, ok, err := i.delta.Apply(snap, net, d)
	i.lat.Observe(time.Since(t0).Seconds())
	return rates, ok, err
}

// Prime implements DeltaScheduler.
func (i *InstrumentedDelta) Prime(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) {
	i.delta.Prime(snap, net, rates)
}

// Name implements Scheduler.
func (i *Instrumented) Name() string { return i.inner.Name() }

// PlanCache forwards the wrapped scheduler's cache so the coordinator's and
// simulator's eager invalidation hooks keep working through the wrapper.
func (i *Instrumented) PlanCache() *PlanCache {
	if pc, ok := i.inner.(interface{ PlanCache() *PlanCache }); ok {
		return pc.PlanCache()
	}
	return nil
}

// Schedule implements Scheduler, timing the wrapped call.
func (i *Instrumented) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	t0 := time.Now()
	rates, err := i.inner.Schedule(snap, net)
	i.lat.Observe(time.Since(t0).Seconds())
	i.calls.Inc()
	if err != nil {
		i.errs.Inc()
	}
	if i.hits != nil {
		st := i.PlanCache().Stats()
		i.mu.Lock()
		i.hits.Add(st.Hits - i.last.Hits)
		i.misses.Add(st.Misses - i.last.Misses)
		i.invals.Add(st.Invalidations - i.last.Invalidations)
		i.last = st
		i.mu.Unlock()
	}
	return rates, err
}
