package sched

import (
	"fmt"
	"sort"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// FlowState is a scheduler's view of one released, unfinished flow at a
// scheduling instant.
type FlowState struct {
	Flow      *core.Flow
	GroupID   string
	Remaining unit.Bytes
	// Release is the time the flow became transmittable (its start time in
	// the paper's terms).
	Release unit.Time
}

// GroupState carries the per-EchelonFlow context a scheduler needs.
type GroupState struct {
	Group *core.EchelonFlow
	// Reference is the observed reference time r: the start time of the
	// group's head flow (§3.1). It is fixed the moment the head flow is
	// released.
	Reference unit.Time
	// AchievedTardiness is the largest tardiness among the group's already
	// finished flows. A group cannot do better than this, so schedulers use
	// it as the floor when minimizing the group's tardiness.
	AchievedTardiness unit.Time
}

// Snapshot is the input to a scheduling decision: the current time, every
// released unfinished flow, and the groups they belong to. Every FlowState
// must reference a group present in Groups.
type Snapshot struct {
	Now    unit.Time
	Flows  []*FlowState
	Groups map[string]*GroupState
}

// Validate checks internal consistency of the snapshot.
func (s *Snapshot) Validate() error {
	seen := make(map[string]bool, len(s.Flows))
	for _, fs := range s.Flows {
		if fs.Flow == nil {
			return fmt.Errorf("sched: snapshot flow with nil core flow")
		}
		if seen[fs.Flow.ID] {
			return fmt.Errorf("sched: snapshot has duplicate flow %q", fs.Flow.ID)
		}
		seen[fs.Flow.ID] = true
		if fs.Remaining < 0 {
			return fmt.Errorf("sched: flow %q has negative remaining volume", fs.Flow.ID)
		}
		g, ok := s.Groups[fs.GroupID]
		if !ok {
			return fmt.Errorf("sched: flow %q references unknown group %q", fs.Flow.ID, fs.GroupID)
		}
		if g.Group.Flow(fs.Flow.ID) == nil {
			return fmt.Errorf("sched: flow %q is not a member of group %q", fs.Flow.ID, fs.GroupID)
		}
	}
	return nil
}

// Deadline returns the flow's ideal finish time under its group's
// arrangement and observed reference time.
func (s *Snapshot) Deadline(fs *FlowState) unit.Time {
	g := s.Groups[fs.GroupID]
	return g.Group.Arrangement.Deadline(fs.Flow.Stage, g.Reference)
}

// Scheduler assigns transmission rates to the snapshot's flows. The returned
// map contains an entry (possibly zero) for every flow in the snapshot, and
// the allocation is always feasible on the given network.
type Scheduler interface {
	// Name identifies the scheduler in traces and experiment tables.
	Name() string
	// Schedule computes the allocation for the instant snap.Now. It is
	// re-invoked by the runtime on every flow arrival and departure.
	Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error)
}

// requestsOf converts flow states into fabric requests, preserving order.
func requestsOf(flows []*FlowState) []fabric.Request {
	reqs := make([]fabric.Request, len(flows))
	for i, fs := range flows {
		reqs[i] = fabric.Request{ID: fs.Flow.ID, Src: fs.Flow.Src, Dst: fs.Flow.Dst}
	}
	return reqs
}

// sortedCopy returns the snapshot's flows sorted by the given less function
// with flow-ID tie-breaking, leaving the snapshot untouched.
func sortedCopy(flows []*FlowState, less func(a, b *FlowState) bool) []*FlowState {
	out := append([]*FlowState(nil), flows...)
	sort.SliceStable(out, func(i, j int) bool {
		if less(out[i], out[j]) {
			return true
		}
		if less(out[j], out[i]) {
			return false
		}
		return out[i].Flow.ID < out[j].Flow.ID
	})
	return out
}

// zeroFill returns a rate map with an explicit zero for every flow, so
// callers can distinguish "scheduled at zero" from "missing".
func zeroFill(snap *Snapshot) map[string]unit.Rate {
	rates := make(map[string]unit.Rate, len(snap.Flows))
	for _, fs := range snap.Flows {
		rates[fs.Flow.ID] = 0
	}
	return rates
}
