package sched

import (
	"sort"
	"sync"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// Delta describes what changed since the last successful scheduling pass:
// the set of groups whose released-flow membership was touched by the event
// (a flow release/finish/resume, or a single-group register/unregister).
// Groups absent from the set are asserted unchanged — a drifted group that
// is not declared forces a full reschedule rather than a wrong patch.
type Delta struct {
	Groups []string
}

// DeltaScheduler is the event-driven incremental API. Apply patches the
// previous allocation for one event instead of re-solving every group. The
// ok result is false when the scheduler cannot prove the patch equivalent
// to a full Schedule (cold state, fabric generation bump, undeclared drift,
// planning failure, ...); the caller must then fall back to Schedule, which
// also rebuilds the incremental state.
type DeltaScheduler interface {
	Scheduler
	// Apply returns a complete rate map (an entry for every snapshot flow)
	// or ok=false. When ok is true the map is feasible on net and — for
	// every flow of a replanned group — bit-equal to what a full Schedule
	// of the same snapshot would assign. Flows of untouched groups keep
	// their previous rates (held until their group's next event or a full
	// reschedule).
	Apply(snap *Snapshot, net fabric.Fabric, d Delta) (map[string]unit.Rate, bool, error)
	// Prime installs incremental state from an externally known allocation
	// (e.g. a journal snapshot's restored rates) without scheduling, so a
	// restored coordinator continues on the delta path bit-for-bit.
	Prime(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate)
}

// DeltaOutcome reports what the last Apply call did, for telemetry and the
// delta-vs-full differential oracle.
type DeltaOutcome struct {
	// Applied is true when Apply produced a patch (ok=true).
	Applied bool
	// Reason names the fallback cause when Applied is false.
	Reason string
	// Held counts the flows that kept their previous rate.
	Held int
	// Replanned lists the groups (sorted) whose flows were re-planned.
	Replanned []string
}

// deltaGroup is the tracked footprint of one group at the last pass. Links
// are distinct capacity pools: two groups interact in planning only when
// they share a fabric.LinkKey.
type deltaGroup struct {
	flowIDs []string // sorted
	ports   map[fabric.LinkKey]struct{}
}

// deltaState is the incremental scheduler's view of the last successful
// pass: the allocation it committed and each group's membership/footprint.
type deltaState struct {
	net    fabric.Fabric
	netGen uint64
	now    unit.Time
	rates  map[string]unit.Rate
	groups map[string]*deltaGroup
}

// DeltaEchelon wraps EchelonMADD with the incremental Apply path. Schedule
// forwards to the inner scheduler and (re)captures incremental state, so any
// fallback self-heals on the next full pass. The wrapper shares the inner
// scheduler's PlanCache: cached solo rankings are valid for whichever path
// computes them, because both store only values a cold planner would produce.
//
// Why patching a component is exact: EchelonMADD plans each group against
// per-link free-capacity timelines, then backfills and clamps per link.
// Every step reads and writes only the links the involved flows touch (as
// enumerated by the fabric's FlowLinks), so two groups whose flows share no
// link never influence each other's rates. Apply therefore replans exactly
// the transitive closure of link-sharing groups around the changed ones
// (against fresh sparse profiles, in the same rank order the full sort would
// give them) and holds everything else. Held flows keep rates from a pass
// where they were feasible on the same fabric generation, and no replanned
// flow shares a link with them — the merged map stays feasible.
type DeltaEchelon struct {
	inner EchelonMADD

	mu   sync.Mutex
	st   *deltaState
	last DeltaOutcome
}

// NewDelta wraps an EchelonMADD scheduler with the incremental path.
func NewDelta(inner EchelonMADD) *DeltaEchelon {
	return &DeltaEchelon{inner: inner}
}

// Name implements Scheduler.
func (d *DeltaEchelon) Name() string { return d.inner.Name() + "+delta" }

// PlanCache exposes the inner scheduler's cache for eager invalidation.
func (d *DeltaEchelon) PlanCache() *PlanCache { return d.inner.Cache }

// Inner returns the wrapped scheduler (for tests and experiment tables).
func (d *DeltaEchelon) Inner() EchelonMADD { return d.inner }

// LastOutcome reports what the most recent Apply did.
func (d *DeltaEchelon) LastOutcome() DeltaOutcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Schedule implements Scheduler: a full pass that also rebuilds the
// incremental state.
func (d *DeltaEchelon) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	rates, err := d.inner.Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.st = captureDeltaState(snap, net, rates)
	d.mu.Unlock()
	return rates, nil
}

// Prime implements DeltaScheduler.
func (d *DeltaEchelon) Prime(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) {
	if snap == nil || net == nil || snap.Validate() != nil {
		return
	}
	d.mu.Lock()
	d.st = captureDeltaState(snap, net, rates)
	d.mu.Unlock()
}

// Apply implements DeltaScheduler. See DeltaEchelon for the exactness
// argument; every return path records a DeltaOutcome.
func (d *DeltaEchelon) Apply(snap *Snapshot, net fabric.Fabric, delta Delta) (map[string]unit.Rate, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fall := func(reason string) (map[string]unit.Rate, bool, error) {
		d.last = DeltaOutcome{Applied: false, Reason: reason}
		return nil, false, nil
	}
	st := d.st
	switch {
	case st == nil:
		return fall("cold-state")
	case d.inner.GlobalEDF:
		// Global EDF interleaves every group's classes on one shared
		// timeline; there is no link-local component to patch.
		return fall("global-edf")
	case st.net != net || st.netGen != net.Generation():
		return fall("fabric-generation")
	}
	if err := snap.Validate(); err != nil {
		return fall("invalid-snapshot")
	}
	if snap.Now < st.now {
		return fall("time-regression")
	}

	rates := zeroFill(snap)
	ids, byGroup := groupedFlows(snap)
	inDelta := make(map[string]bool, len(delta.Groups))
	for _, id := range delta.Groups {
		inDelta[id] = true
	}

	// Any membership drift outside the declared delta voids the patch.
	for _, id := range ids {
		prev, tracked := st.groups[id]
		if !tracked {
			if !inDelta[id] {
				return fall("untracked-group")
			}
			continue
		}
		if !inDelta[id] && !equalFlowIDs(prev.flowIDs, byGroup[id]) {
			return fall("undeclared-drift")
		}
	}
	for id := range st.groups {
		if _, live := byGroup[id]; !live && !inDelta[id] {
			return fall("undeclared-drift")
		}
	}

	// Link footprints. Tracked groups outside the delta just proved their
	// membership unchanged, and a topology mutation would have bumped the
	// fabric generation — their footprint from the last pass is current, so
	// reuse it. Only the declared groups compute fresh link sets.
	gports := make(map[string]map[fabric.LinkKey]struct{}, len(ids))
	for _, id := range ids {
		if prev, tracked := st.groups[id]; tracked && !inDelta[id] {
			gports[id] = prev.ports
			continue
		}
		ports := make(map[fabric.LinkKey]struct{}, 2*len(byGroup[id]))
		addFlowPorts(ports, net, byGroup[id])
		gports[id] = ports
	}

	// Seed the affected-link set from the changed groups' footprints — both
	// the previous one (covers finished/unregistered flows) and the current
	// one (covers newly released flows) — then close over current groups
	// sharing any of those links.
	seeds := make(map[fabric.LinkKey]struct{})
	for _, id := range delta.Groups {
		if prev := st.groups[id]; prev != nil {
			for pk := range prev.ports {
				seeds[pk] = struct{}{}
			}
		}
		for pk := range gports[id] {
			seeds[pk] = struct{}{}
		}
	}
	comp := make(map[string]bool, len(ids))
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if comp[id] || !intersectsPorts(gports[id], seeds) {
				continue
			}
			comp[id] = true
			for pk := range gports[id] {
				seeds[pk] = struct{}{}
			}
			changed = true
		}
	}
	compIDs := make([]string, 0, len(comp))
	for _, id := range ids {
		if comp[id] {
			compIDs = append(compIDs, id)
		}
	}
	if len(compIDs) == len(ids) && len(ids) > 1 {
		// The event touches everything; the pooled full pass is cheaper.
		return fall("component-spans-all")
	}

	// Hold every flow outside the component at its previous rate.
	held := 0
	for _, fs := range snap.Flows {
		if comp[fs.GroupID] {
			continue
		}
		r, ok := st.rates[fs.Flow.ID]
		if !ok {
			return fall("missing-held-rate")
		}
		rates[fs.Flow.ID] = r
		held++
	}

	// Rank the component exactly as Schedule ranks the full set: cached
	// solo tardiness where provably equivalent, fresh solo plans otherwise.
	// A solo plan only reads the group's own links, so planning it against
	// sparse profiles is bit-equal to the full-fabric pass. Note: no prune —
	// the component is not the full live-group set, so pruning here would
	// evict live entries (the hazard PlanCache.prune now guards against).
	classes := make(map[string][]deadlineClass, len(compIDs))
	floors := make(map[string]unit.Time, len(compIDs))
	solo := make(map[string]unit.Time, len(compIDs))
	for _, id := range compIDs {
		classes[id] = classesOf(snap, byGroup[id])
		floors[id] = unit.MaxTime(0, snap.Groups[id].AchievedTardiness)
		if tau, ok := d.inner.Cache.lookup(snap, net, id, byGroup[id], floors[id]); ok {
			solo[id] = tau
			continue
		}
		spp := sparseProfiles(net, snap.Now, byGroup[id])
		plans, tau, err := planGroup(snap, spp, classes[id], floors[id])
		if err != nil {
			return fall("solo-plan-error")
		}
		d.inner.Cache.store(snap, net, id, byGroup[id], floors[id], tau, plans)
		solo[id] = tau
	}
	if d.inner.Weighted {
		for _, id := range compIDs {
			solo[id] = unit.Time(float64(solo[id]) / snap.Groups[id].Group.EffectiveWeight())
		}
	}
	sort.SliceStable(compIDs, func(i, j int) bool {
		a, b := solo[compIDs[i]], solo[compIDs[j]]
		if !a.ApproxEq(b) {
			if d.inner.Order == LargestTardinessFirst {
				return a > b
			}
			return a < b
		}
		return compIDs[i] < compIDs[j]
	})

	// Plan the component groups in rank order against sparse profiles of
	// the component's links only.
	compFlows := make([]*FlowState, 0, len(snap.Flows)-held)
	for _, fs := range snap.Flows {
		if comp[fs.GroupID] {
			compFlows = append(compFlows, fs)
		}
	}
	pp := sparseProfiles(net, snap.Now, compFlows)
	for _, id := range compIDs {
		plans, _, err := planGroup(snap, pp, classes[id], floors[id])
		if err != nil {
			return fall("plan-error")
		}
		for _, fs := range byGroup[id] {
			rates[fs.Flow.ID] += rateAt(plans[fs.Flow.ID], snap.Now)
		}
	}

	if d.inner.Backfill {
		backfillComponent(snap, net, compFlows, rates)
	}
	if !clampComponent(snap, net, compFlows, rates) {
		return fall("infeasible-patch")
	}

	// Incremental state update: only the declared groups' membership (and so
	// footprint) changed since the last pass; every other group's record
	// carries over untouched. The freshly built rate map becomes the new
	// state — the caller gets its own copy.
	st.now = snap.Now
	st.rates = rates
	for _, id := range delta.Groups {
		flows := byGroup[id]
		if len(flows) == 0 {
			delete(st.groups, id)
			continue
		}
		g := &deltaGroup{flowIDs: make([]string, 0, len(flows)), ports: gports[id]}
		for _, fs := range flows {
			g.flowIDs = append(g.flowIDs, fs.Flow.ID)
		}
		sort.Strings(g.flowIDs)
		st.groups[id] = g
	}
	out := make(map[string]unit.Rate, len(rates))
	for id, r := range rates {
		out[id] = r
	}
	d.last = DeltaOutcome{Applied: true, Replanned: append([]string(nil), compIDs...), Held: held}
	sort.Strings(d.last.Replanned)
	return out, true, nil
}

// captureDeltaState records the allocation and per-group footprints of a
// successful pass.
func captureDeltaState(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) *deltaState {
	st := &deltaState{
		net:    net,
		netGen: net.Generation(),
		now:    snap.Now,
		rates:  make(map[string]unit.Rate, len(rates)),
		groups: make(map[string]*deltaGroup),
	}
	for id, r := range rates {
		st.rates[id] = r
	}
	_, byGroup := groupedFlows(snap)
	for id, flows := range byGroup {
		g := &deltaGroup{
			flowIDs: make([]string, 0, len(flows)),
			ports:   make(map[fabric.LinkKey]struct{}, 2*len(flows)),
		}
		for _, fs := range flows {
			g.flowIDs = append(g.flowIDs, fs.Flow.ID)
		}
		sort.Strings(g.flowIDs)
		addFlowPorts(g.ports, net, flows)
		st.groups[id] = g
	}
	return st
}

// addFlowPorts adds every link the flows touch to the set.
func addFlowPorts(set map[fabric.LinkKey]struct{}, net fabric.Fabric, flows []*FlowState) {
	var lbuf []fabric.LinkKey
	for _, fs := range flows {
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			set[k] = struct{}{}
		}
	}
}

func intersectsPorts(a map[fabric.LinkKey]struct{}, b map[fabric.LinkKey]struct{}) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for pk := range a {
		if _, ok := b[pk]; ok {
			return true
		}
	}
	return false
}

// equalFlowIDs reports whether sorted prev equals the flows' ID set. Flow
// IDs are unique within a validated snapshot, so equal lengths plus every
// current ID present in prev implies set equality.
func equalFlowIDs(prev []string, flows []*FlowState) bool {
	if len(prev) != len(flows) {
		return false
	}
	for _, fs := range flows {
		i := sort.SearchStrings(prev, fs.Flow.ID)
		if i == len(prev) || prev[i] != fs.Flow.ID {
			return false
		}
	}
	return true
}

// sparseProfiles builds full-capacity timelines for exactly the links the
// given flows touch. Planning against them is bit-equal to planning against
// the pooled full-fabric profiles, which start from the same
// newProfile(now, capacity) state for every link.
func sparseProfiles(net fabric.Fabric, now unit.Time, flows []*FlowState) *portProfiles {
	pp := &portProfiles{
		net:     net,
		topoGen: net.TopoGeneration(),
		ports:   make(map[fabric.LinkKey]*profile),
		vol:     make(map[*profile]unit.Bytes),
	}
	var lbuf []fabric.LinkKey
	for _, fs := range flows {
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			if pp.ports[k] == nil {
				pp.ports[k] = newProfile(now, net.LinkCapacity(k))
			}
		}
	}
	return pp
}

// backfillComponent mirrors EchelonMADD.backfill over the component's flows
// and links only. Non-component flows never touch a component link, so the
// residual arithmetic — including the per-link subtraction order, which
// follows snapshot flow order exactly as the full pass does — is bit-equal.
func backfillComponent(snap *Snapshot, net fabric.Fabric, flows []*FlowState, rates map[string]unit.Rate) {
	res := newSparseResidual(net, flows)
	for _, fs := range flows {
		res.take(fs.Flow.Src, fs.Flow.Dst, rates[fs.Flow.ID])
	}
	ordered := sortedCopy(flows, func(a, b *FlowState) bool {
		return snap.Deadline(a).Before(snap.Deadline(b))
	})
	for _, fs := range ordered {
		extra := res.available(fs.Flow.Src, fs.Flow.Dst)
		if extra <= unit.Rate(unit.Eps) {
			continue
		}
		rates[fs.Flow.ID] += extra
		res.take(fs.Flow.Src, fs.Flow.Dst, extra)
	}
}

// clampComponent mirrors clampFeasible over the component's flows, then
// verifies the component's links stay within capacity at fabric.Feasible's
// tolerance. It reports false when the patch is not provably feasible.
func clampComponent(snap *Snapshot, net fabric.Fabric, flows []*FlowState, rates map[string]unit.Rate) bool {
	used := make(map[fabric.LinkKey]unit.Rate)
	var lbuf []fabric.LinkKey
	accumulate := func() {
		clear(used)
		for _, fs := range flows {
			lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
			for _, k := range lbuf {
				used[k] += rates[fs.Flow.ID]
			}
		}
	}
	accumulate()
	scale := func(used, cap unit.Rate) float64 {
		if used <= cap || used == 0 {
			return 1
		}
		return float64(cap) / float64(used)
	}
	for _, fs := range flows {
		s := 1.0
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			if v := scale(used[k], net.LinkCapacity(k)); v < s {
				s = v
			}
		}
		if s < 1 {
			rates[fs.Flow.ID] = unit.Rate(float64(rates[fs.Flow.ID]) * s)
		}
	}
	for _, fs := range flows {
		if rates[fs.Flow.ID] < 0 {
			return false
		}
	}
	accumulate()
	const tol = 1e-6
	for k, u := range used {
		if float64(u) > float64(net.LinkCapacity(k))+tol {
			return false
		}
	}
	return true
}

// sparseResidual is fabric.Residual restricted to the links of one
// component, with identical available/take arithmetic.
type sparseResidual struct {
	net  fabric.Fabric
	free map[fabric.LinkKey]unit.Rate
	buf  []fabric.LinkKey
}

func newSparseResidual(net fabric.Fabric, flows []*FlowState) *sparseResidual {
	r := &sparseResidual{
		net:  net,
		free: make(map[fabric.LinkKey]unit.Rate),
	}
	for _, fs := range flows {
		r.buf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, r.buf[:0])
		for _, k := range r.buf {
			if _, ok := r.free[k]; !ok {
				r.free[k] = net.LinkCapacity(k)
			}
		}
	}
	return r
}

func (r *sparseResidual) available(src, dst string) unit.Rate {
	r.buf = r.net.FlowLinks(src, dst, r.buf[:0])
	a := unit.Rate(1e300)
	for _, k := range r.buf {
		a = unit.MinRate(a, r.free[k])
	}
	if a < 0 {
		return 0
	}
	return a
}

func (r *sparseResidual) take(src, dst string, rate unit.Rate) {
	r.buf = r.net.FlowLinks(src, dst, r.buf[:0])
	for _, k := range r.buf {
		r.free[k] -= rate
		if r.free[k] < 0 {
			r.free[k] = 0
		}
	}
}
