package sched

import (
	"sort"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// CoflowMADD is Varys-style Coflow scheduling: groups are ordered by
// Smallest Effective Bottleneck First (SEBF) and, within a group, every flow
// receives the Minimum Allocation for Desired Duration (MADD) — the rate
// that finishes it exactly at the group's bottleneck completion time, so all
// flows of a Coflow finish simultaneously.
//
// This is the abstraction the paper argues against for DDLT: on pipeline
// workloads the simultaneous finish delays early micro-batches behind late
// ones (Fig. 2b). It treats every group as a Coflow regardless of its
// declared arrangement.
type CoflowMADD struct {
	// Backfill redistributes leftover capacity to flows in SEBF order after
	// the minimal allocations, making the scheduler work-conserving.
	Backfill bool
}

// Name implements Scheduler.
func (c CoflowMADD) Name() string {
	if c.Backfill {
		return "coflow-madd+bf"
	}
	return "coflow-madd"
}

// groupedFlows collects the snapshot's flows per group, ordered by group ID
// for determinism.
func groupedFlows(snap *Snapshot) ([]string, map[string][]*FlowState) {
	byGroup := make(map[string][]*FlowState)
	for _, fs := range snap.Flows {
		byGroup[fs.GroupID] = append(byGroup[fs.GroupID], fs)
	}
	ids := make([]string, 0, len(byGroup))
	for id := range byGroup {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, byGroup
}

// volumesOf converts a group's flows to remaining volume demands.
func volumesOf(flows []*FlowState) []fabric.VolumeDemand {
	out := make([]fabric.VolumeDemand, 0, len(flows))
	for _, fs := range flows {
		out = append(out, fabric.VolumeDemand{Src: fs.Flow.Src, Dst: fs.Flow.Dst, Volume: fs.Remaining})
	}
	return out
}

// residualGamma computes a group's bottleneck completion time against
// residual link capacities. It returns Inf when a needed link has no
// capacity left.
func residualGamma(flows []*FlowState, res *fabric.Residual, net fabric.Fabric) unit.Time {
	vols := make(map[fabric.LinkKey]unit.Bytes)
	var lbuf []fabric.LinkKey
	for _, fs := range flows {
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			vols[k] += fs.Remaining
		}
	}
	var gamma unit.Time
	for k, vol := range vols {
		gamma = unit.MaxTime(gamma, vol.At(res.Free(k)))
	}
	return gamma
}

// Schedule implements Scheduler.
func (c CoflowMADD) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	rates := zeroFill(snap)
	if len(snap.Flows) == 0 {
		return rates, nil
	}
	ids, byGroup := groupedFlows(snap)

	// SEBF: order groups by their bottleneck time on the full fabric.
	solo := make(map[string]unit.Time, len(ids))
	for _, id := range ids {
		g, err := net.BottleneckTime(volumesOf(byGroup[id]))
		if err != nil {
			return nil, err
		}
		solo[id] = g
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if !solo[ids[i]].ApproxEq(solo[ids[j]]) {
			return solo[ids[i]] < solo[ids[j]]
		}
		return ids[i] < ids[j]
	})

	// MADD per group against the residual capacity left by earlier groups.
	res := net.NewResidual()
	for _, id := range ids {
		flows := byGroup[id]
		gamma := residualGamma(flows, res, net)
		if gamma.IsInf() {
			continue // starved this round; re-scheduled on the next event
		}
		if gamma <= 0 {
			continue // nothing left to send
		}
		for _, fs := range flows {
			r := unit.Rate(float64(fs.Remaining) / float64(gamma))
			r = unit.MinRate(r, res.Available(fs.Flow.Src, fs.Flow.Dst))
			rates[fs.Flow.ID] += r
			res.Take(fs.Flow.Src, fs.Flow.Dst, r)
		}
	}

	if c.Backfill {
		for _, id := range ids {
			for _, fs := range sortedCopy(byGroup[id], func(a, b *FlowState) bool { return false }) {
				extra := res.Available(fs.Flow.Src, fs.Flow.Dst)
				if extra <= unit.Rate(unit.Eps) {
					continue
				}
				rates[fs.Flow.ID] += extra
				res.Take(fs.Flow.Src, fs.Flow.Dst, extra)
			}
		}
	}
	return rates, nil
}
