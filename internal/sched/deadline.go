package sched

import (
	"sync"
	"time"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// DegradeOutcome reports what the most recent deadline-bounded call did, for
// telemetry and the degrade/re-convergence oracle.
type DegradeOutcome struct {
	// Degraded is true when the primary pass was not used: the fallback
	// allocation was returned (Schedule) or the patch was refused (Apply).
	Degraded bool
	// Reason names the degrade cause: "overrun" (budget exceeded), "busy"
	// (a previously abandoned pass still draining), "error" (primary
	// returned an error), "breaker-open" (cooling down after TripAfter
	// consecutive failures), "apply-gated" (incremental path disabled until
	// the next clean full pass).
	Reason string
	// Elapsed is how long the bounded call took to return (never much more
	// than the budget on the degrade paths).
	Elapsed time.Duration
	// BreakerOpen is true while the circuit breaker holds the scheduler in
	// fallback.
	BreakerOpen bool
}

// DegradeControl is the coordinator-facing handle on a Deadline wrapper,
// satisfied by both the plain and the delta-forwarding variant.
type DegradeControl interface {
	// Degraded reports whether the wrapper is currently in a degraded
	// regime: the last call fell back, or the breaker is open.
	Degraded() bool
	// LastDegrade returns the most recent outcome.
	LastDegrade() DegradeOutcome
	// SetStall injects an artificial latency into every primary pass — the
	// chaos hook behind the faults.SchedStall kind. Zero clears it.
	SetStall(d time.Duration)
	// Quiesce blocks until no abandoned primary pass is in flight. Callers
	// that mutate shared scheduling inputs (the fabric) must quiesce
	// first: an abandoned pass keeps reading the network after its call
	// returned.
	Quiesce()
	// Bypass, while on, runs every call synchronously on the primary with no
	// budget, breaker or stall — journal replay uses it so a slow replaying
	// machine cannot degrade where the recorded run did not (which would
	// silently break bit-for-bit recovery). Off restores bounded behavior.
	Bypass(on bool)
}

// DeadlineOptions configures WithDeadline.
type DeadlineOptions struct {
	// Budget is the per-call time budget for the primary scheduler. Zero or
	// negative disables wrapping (WithDeadline returns the inner scheduler).
	Budget time.Duration
	// TripAfter opens the circuit breaker after this many consecutive
	// overruns/errors (default 3).
	TripAfter int
	// Cooldown is how long the breaker stays open before probing the
	// primary again (default 10x Budget).
	Cooldown time.Duration
	// Fallback computes the degraded allocation (default Fair{} max-min).
	// It runs synchronously and must be cheap and always feasible.
	Fallback Scheduler
	// Observer, when set, is invoked after every bounded call with its
	// outcome. It runs on the caller's goroutine; keep it non-blocking.
	Observer func(DegradeOutcome)
}

// Deadline bounds every Schedule call of the wrapped scheduler with a time
// budget. The primary pass runs on a helper goroutine against a deep-copied
// snapshot; on overrun the call is abandoned (the goroutine drains in the
// background, serialized by a single slot) and the fallback allocation is
// returned instead. TripAfter consecutive failures open a circuit breaker
// that routes everything to the fallback for Cooldown, then probes recovery.
//
// Exactness caveats: fallback allocations are feasible but not tardiness-
// optimal, and after any degraded call the incremental (delta) path is gated
// off until a primary full pass completes in budget — an abandoned pass may
// finish late and rebuild the inner scheduler's delta state from a stale
// snapshot, so patches against it are not provably equivalent to a full
// reschedule. The slot also serializes primary passes: a fresh pass can
// never interleave with an abandoned one, so the late rebuild cannot
// overwrite a newer one.
type Deadline struct {
	inner     Scheduler
	fb        Scheduler
	budget    time.Duration
	tripAfter int
	cooldown  time.Duration
	observer  func(DegradeOutcome)

	// slot is a one-token semaphore held for the lifetime of each primary
	// pass, including after abandonment.
	slot chan struct{}

	mu        sync.Mutex
	fails     int       // consecutive overruns/errors
	openUntil time.Time // breaker open while clock is before this
	clean     bool      // last committed pass was a within-budget primary
	stall     time.Duration
	bypass    bool // run unbounded on the primary (journal replay)
	last      DegradeOutcome
}

// WithDeadline wraps inner with a per-call time budget and a max-min fair
// fallback. A non-positive budget returns inner unchanged. When inner also
// implements DeltaScheduler the returned wrapper forwards the incremental
// API (gated off while degraded), mirroring Instrument's conditional
// forwarding.
func WithDeadline(inner Scheduler, opts DeadlineOptions) Scheduler {
	if inner == nil || opts.Budget <= 0 {
		return inner
	}
	if opts.TripAfter <= 0 {
		opts.TripAfter = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 10 * opts.Budget
	}
	if opts.Fallback == nil {
		opts.Fallback = Fair{}
	}
	d := &Deadline{
		inner:     inner,
		fb:        opts.Fallback,
		budget:    opts.Budget,
		tripAfter: opts.TripAfter,
		cooldown:  opts.Cooldown,
		observer:  opts.Observer,
		slot:      make(chan struct{}, 1),
	}
	if ds, ok := inner.(DeltaScheduler); ok {
		return &DeadlineDelta{Deadline: d, delta: ds}
	}
	return d
}

// Name implements Scheduler.
func (d *Deadline) Name() string { return d.inner.Name() + "+deadline" }

// PlanCache forwards the wrapped scheduler's cache so eager invalidation
// keeps working through the wrapper chain.
func (d *Deadline) PlanCache() *PlanCache {
	if pc, ok := d.inner.(interface{ PlanCache() *PlanCache }); ok {
		return pc.PlanCache()
	}
	return nil
}

// Degraded implements DegradeControl.
func (d *Deadline) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last.Degraded || !d.openUntil.IsZero()
}

// LastDegrade implements DegradeControl.
func (d *Deadline) LastDegrade() DegradeOutcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// SetStall implements DegradeControl.
func (d *Deadline) SetStall(v time.Duration) {
	d.mu.Lock()
	if v < 0 {
		v = 0
	}
	d.stall = v
	d.mu.Unlock()
}

// Quiesce implements DegradeControl.
func (d *Deadline) Quiesce() {
	d.slot <- struct{}{}
	<-d.slot
}

// Bypass implements DegradeControl.
func (d *Deadline) Bypass(on bool) {
	d.mu.Lock()
	d.bypass = on
	d.mu.Unlock()
}

func (d *Deadline) bypassed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bypass
}

// Schedule implements Scheduler: the primary pass under budget, the fallback
// on overrun, error, contention or an open breaker.
func (d *Deadline) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	t0 := time.Now()
	if d.bypassed() {
		// Unbounded replay mode: serialize against any abandoned pass, run
		// the primary synchronously, and commit it as a clean success.
		d.slot <- struct{}{}
		defer func() { <-d.slot }()
		rates, err := d.inner.Schedule(snap, net)
		if err == nil {
			d.noteSuccess(t0)
		}
		return rates, err
	}
	if !d.admit(t0) {
		return d.fallback(snap, net, "breaker-open", t0)
	}
	select {
	case d.slot <- struct{}{}:
	default:
		// An abandoned pass is still draining; starting another primary
		// would queue behind it past the budget anyway. Not counted toward
		// the breaker — it is a symptom of the overrun already counted.
		return d.fallback(snap, net, "busy", t0)
	}
	type result struct {
		rates map[string]unit.Rate
		err   error
	}
	done := make(chan result, 1)
	shadow := copySnapshot(snap)
	stall := d.stallFor()
	go func() {
		defer func() { <-d.slot }()
		if stall > 0 {
			time.Sleep(stall)
		}
		rates, err := d.inner.Schedule(shadow, net)
		done <- result{rates, err}
	}()
	timer := time.NewTimer(d.budget)
	defer timer.Stop()
	select {
	case r := <-done:
		if r.err != nil {
			d.noteFailure(time.Now())
			return d.fallback(snap, net, "error", t0)
		}
		d.noteSuccess(t0)
		return r.rates, nil
	case <-timer.C:
		d.noteFailure(time.Now())
		return d.fallback(snap, net, "overrun", t0)
	}
}

// admit reports whether the primary may run: breaker closed, or open long
// enough that this call probes recovery.
func (d *Deadline) admit(now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.openUntil.IsZero() || !now.Before(d.openUntil)
}

// noteSuccess closes the breaker and marks the committed state clean.
func (d *Deadline) noteSuccess(t0 time.Time) {
	out := DegradeOutcome{Elapsed: time.Since(t0)}
	d.mu.Lock()
	d.fails = 0
	d.openUntil = time.Time{}
	d.clean = true
	d.last = out
	obs := d.observer
	d.mu.Unlock()
	if obs != nil {
		obs(out)
	}
}

// noteFailure counts a consecutive overrun/error, gates the delta path, and
// trips the breaker at the threshold (re-arming it on a failed probe).
func (d *Deadline) noteFailure(now time.Time) {
	d.mu.Lock()
	d.fails++
	d.clean = false
	if d.fails >= d.tripAfter {
		d.openUntil = now.Add(d.cooldown)
	}
	d.mu.Unlock()
}

// fallback computes the degraded allocation and records the outcome.
func (d *Deadline) fallback(snap *Snapshot, net fabric.Fabric, reason string, t0 time.Time) (map[string]unit.Rate, error) {
	rates, err := d.fb.Schedule(snap, net)
	out := DegradeOutcome{Degraded: true, Reason: reason, Elapsed: time.Since(t0)}
	d.mu.Lock()
	d.clean = false
	out.BreakerOpen = !d.openUntil.IsZero()
	d.last = out
	obs := d.observer
	d.mu.Unlock()
	if obs != nil {
		obs(out)
	}
	return rates, err
}

func (d *Deadline) stallFor() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stall
}

// DeadlineDelta is a Deadline whose wrapped scheduler also implements
// DeltaScheduler. Apply forwards under the same budget and slot; while the
// wrapper is not clean (a degraded pass committed last, or an abandoned pass
// may still rebuild stale delta state) Apply refuses with ok=false so the
// coordinator takes the full Schedule path, which self-heals.
type DeadlineDelta struct {
	*Deadline
	delta DeltaScheduler
}

// Apply implements DeltaScheduler.
func (d *DeadlineDelta) Apply(snap *Snapshot, net fabric.Fabric, delta Delta) (map[string]unit.Rate, bool, error) {
	t0 := time.Now()
	if d.bypassed() {
		d.slot <- struct{}{}
		defer func() { <-d.slot }()
		rates, ok, err := d.delta.Apply(snap, net, delta)
		if err == nil && ok {
			d.noteSuccess(t0)
		}
		return rates, ok, err
	}
	d.mu.Lock()
	gated := !d.clean || !d.openUntil.IsZero()
	d.mu.Unlock()
	if gated {
		d.record(DegradeOutcome{Degraded: true, Reason: "apply-gated", Elapsed: time.Since(t0)})
		return nil, false, nil
	}
	select {
	case d.slot <- struct{}{}:
	default:
		d.record(DegradeOutcome{Degraded: true, Reason: "busy", Elapsed: time.Since(t0)})
		return nil, false, nil
	}
	type result struct {
		rates map[string]unit.Rate
		ok    bool
		err   error
	}
	done := make(chan result, 1)
	shadow := copySnapshot(snap)
	stall := d.stallFor()
	go func() {
		defer func() { <-d.slot }()
		if stall > 0 {
			time.Sleep(stall)
		}
		rates, ok, err := d.delta.Apply(shadow, net, delta)
		done <- result{rates, ok, err}
	}()
	timer := time.NewTimer(d.budget)
	defer timer.Stop()
	select {
	case r := <-done:
		if r.err != nil {
			d.noteFailure(time.Now())
			d.record(DegradeOutcome{Degraded: true, Reason: "error", Elapsed: time.Since(t0)})
			return nil, false, r.err
		}
		if r.ok {
			d.noteSuccess(t0)
		}
		// ok=false without error is the inner scheduler's ordinary full-pass
		// fallback (cold state, drift, ...), not a degrade: the caller's
		// Schedule retry is itself budget-bounded.
		return r.rates, r.ok, nil
	case <-timer.C:
		// Abandon: the draining goroutine may rebuild inner delta state from
		// the stale shadow; noteFailure clears clean so the next Apply is
		// gated until a fresh full pass recaptures it.
		d.noteFailure(time.Now())
		d.record(DegradeOutcome{Degraded: true, Reason: "overrun", Elapsed: time.Since(t0)})
		return nil, false, nil
	}
}

// Prime implements DeltaScheduler. It forwards only when no pass is in
// flight; a primed state is clean by construction.
func (d *DeadlineDelta) Prime(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) {
	select {
	case d.slot <- struct{}{}:
	default:
		return
	}
	defer func() { <-d.slot }()
	d.delta.Prime(snap, net, rates)
	d.mu.Lock()
	d.clean = true
	d.mu.Unlock()
}

// record stores an outcome and notifies the observer.
func (d *Deadline) record(out DegradeOutcome) {
	d.mu.Lock()
	out.BreakerOpen = !d.openUntil.IsZero()
	d.last = out
	obs := d.observer
	d.mu.Unlock()
	if obs != nil {
		obs(out)
	}
}

// copySnapshot deep-copies the mutable layers of a snapshot (FlowState and
// GroupState values) while sharing the immutable core flow/group objects, so
// an abandoned pass can keep reading it after the coordinator, back under
// its own lock, mutates the originals.
func copySnapshot(snap *Snapshot) *Snapshot {
	out := &Snapshot{
		Now:    snap.Now,
		Flows:  make([]*FlowState, len(snap.Flows)),
		Groups: make(map[string]*GroupState, len(snap.Groups)),
	}
	for i, fs := range snap.Flows {
		c := *fs
		out.Flows[i] = &c
	}
	for id, gs := range snap.Groups {
		c := *gs
		out.Groups[id] = &c
	}
	return out
}
