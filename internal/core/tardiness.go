package core

import (
	"fmt"

	"echelonflow/internal/unit"
)

// FlowTardiness is Eq. 1: the actual finish time of a flow minus its ideal
// finish time. It is negative when a flow beats its ideal finish time.
func FlowTardiness(actualFinish, idealFinish unit.Time) unit.Time {
	return actualFinish - idealFinish
}

// Outcome records one completed (or in-flight) group's timing against its
// arrangement.
type Outcome struct {
	Group *EchelonFlow
	// Reference is the observed reference time r — the head flow's start.
	Reference unit.Time
	// Finish maps flow ID to actual finish time. Flows absent from the map
	// are treated as unfinished and excluded from tardiness (callers
	// evaluating completed groups should supply every flow).
	Finish map[string]unit.Time
}

// Tardiness is Eq. 2: the maximum over member flows of (actual finish −
// ideal finish). It returns an error if no finish times are known.
func (o Outcome) Tardiness() (unit.Time, error) {
	if len(o.Finish) == 0 {
		return 0, fmt.Errorf("core: outcome for %q has no finish times", o.Group.ID)
	}
	deadlines := o.Group.Deadlines(o.Reference)
	first := true
	var max unit.Time
	for i, f := range o.Group.Flows {
		e, ok := o.Finish[f.ID]
		if !ok {
			continue
		}
		t := FlowTardiness(e, deadlines[i])
		if first || t > max {
			max = t
			first = false
		}
	}
	if first {
		return 0, fmt.Errorf("core: outcome for %q matches no member flows", o.Group.ID)
	}
	return max, nil
}

// PerFlow returns each finished flow's tardiness in group order, for traces
// and for verifying that a maintained arrangement keeps flow tardiness
// uniform (§3.2: "the tardiness of all the flows in an EchelonFlow should
// remain the same if the EchelonFlow constantly maintains the computation
// arrangement").
func (o Outcome) PerFlow() map[string]unit.Time {
	deadlines := o.Group.Deadlines(o.Reference)
	out := make(map[string]unit.Time, len(o.Finish))
	for i, f := range o.Group.Flows {
		if e, ok := o.Finish[f.ID]; ok {
			out[f.ID] = FlowTardiness(e, deadlines[i])
		}
	}
	return out
}

// CompletionTime returns the latest finish among the group's flows — the
// Coflow completion time metric EchelonFlow generalizes (Property 2).
func (o Outcome) CompletionTime() (unit.Time, error) {
	if len(o.Finish) == 0 {
		return 0, fmt.Errorf("core: outcome for %q has no finish times", o.Group.ID)
	}
	first := true
	var max unit.Time
	for _, f := range o.Group.Flows {
		if e, ok := o.Finish[f.ID]; ok {
			if first || e > max {
				max = e
				first = false
			}
		}
	}
	if first {
		return 0, fmt.Errorf("core: outcome for %q matches no member flows", o.Group.ID)
	}
	return max, nil
}

// TotalTardiness is Eq. 4: the sum of group tardiness over a set of
// EchelonFlows — the global optimization objective across training jobs.
func TotalTardiness(outcomes []Outcome) (unit.Time, error) {
	var sum unit.Time
	for _, o := range outcomes {
		t, err := o.Tardiness()
		if err != nil {
			return 0, err
		}
		sum += t
	}
	return sum, nil
}

// WeightedTardiness is the weighted variant of Eq. 4, using each group's
// EffectiveWeight.
func WeightedTardiness(outcomes []Outcome) (unit.Time, error) {
	var sum unit.Time
	for _, o := range outcomes {
		t, err := o.Tardiness()
		if err != nil {
			return 0, err
		}
		sum += unit.Time(o.Group.EffectiveWeight()) * t
	}
	return sum, nil
}
