package core

import (
	"testing"
	"testing/quick"

	"echelonflow/internal/unit"
)

func pipelineGroup(t *testing.T) *EchelonFlow {
	t.Helper()
	g, err := New("g", Pipeline{T: 2},
		flow("f0", 0), flow("f1", 1), flow("f2", 2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFlowTardiness(t *testing.T) {
	if got := FlowTardiness(5, 3); got != 2 {
		t.Errorf("FlowTardiness = %v, want 2", got)
	}
	if got := FlowTardiness(3, 5); got != -2 {
		t.Errorf("early finish tardiness = %v, want -2", got)
	}
}

func TestOutcomeTardiness(t *testing.T) {
	g := pipelineGroup(t)
	// Reference 0 => deadlines 0, 2, 4.
	o := Outcome{Group: g, Reference: 0, Finish: map[string]unit.Time{
		"f0": 1,   // tardiness 1
		"f1": 2.5, // tardiness 0.5
		"f2": 7,   // tardiness 3
	}}
	got, err := o.Tardiness()
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(3) {
		t.Errorf("Tardiness = %v, want 3 (max)", got)
	}
	per := o.PerFlow()
	if !per["f0"].ApproxEq(1) || !per["f1"].ApproxEq(0.5) || !per["f2"].ApproxEq(3) {
		t.Errorf("PerFlow = %v", per)
	}
}

func TestOutcomeTardinessWithReference(t *testing.T) {
	g := pipelineGroup(t)
	// Reference 10 => deadlines 10, 12, 14.
	o := Outcome{Group: g, Reference: 10, Finish: map[string]unit.Time{
		"f0": 11, "f1": 13, "f2": 15,
	}}
	got, err := o.Tardiness()
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(1) {
		t.Errorf("Tardiness = %v, want 1", got)
	}
}

// A maintained arrangement means uniform per-flow tardiness (§3.2).
func TestMaintainedArrangementUniformTardiness(t *testing.T) {
	g := pipelineGroup(t)
	o := Outcome{Group: g, Reference: 0, Finish: map[string]unit.Time{
		"f0": 1.5, "f1": 3.5, "f2": 5.5,
	}}
	per := o.PerFlow()
	for id, tt := range per {
		if !tt.ApproxEq(1.5) {
			t.Errorf("flow %s tardiness = %v, want uniform 1.5", id, tt)
		}
	}
}

func TestOutcomeErrors(t *testing.T) {
	g := pipelineGroup(t)
	empty := Outcome{Group: g, Finish: nil}
	if _, err := empty.Tardiness(); err == nil {
		t.Error("empty finish map accepted by Tardiness")
	}
	if _, err := empty.CompletionTime(); err == nil {
		t.Error("empty finish map accepted by CompletionTime")
	}
	stranger := Outcome{Group: g, Finish: map[string]unit.Time{"alien": 3}}
	if _, err := stranger.Tardiness(); err == nil {
		t.Error("finish map with no member flows accepted")
	}
	if _, err := stranger.CompletionTime(); err == nil {
		t.Error("CompletionTime with no member flows accepted")
	}
}

func TestOutcomePartialFinish(t *testing.T) {
	g := pipelineGroup(t)
	o := Outcome{Group: g, Reference: 0, Finish: map[string]unit.Time{"f1": 5}}
	got, err := o.Tardiness()
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(3) { // 5 - deadline(stage1)=2
		t.Errorf("partial tardiness = %v, want 3", got)
	}
}

func TestCompletionTime(t *testing.T) {
	g := pipelineGroup(t)
	o := Outcome{Group: g, Finish: map[string]unit.Time{"f0": 4, "f1": 9, "f2": 6}}
	got, err := o.CompletionTime()
	if err != nil || !got.ApproxEq(9) {
		t.Errorf("CompletionTime = %v, %v", got, err)
	}
}

// Property 2: for a Coflow arrangement with reference equal to the first
// flow's start, minimizing max tardiness equals minimizing completion time —
// tardiness == CCT − r for every outcome.
func TestCoflowTardinessEqualsCCT(t *testing.T) {
	g, err := NewCoflow("c", flow("a", 0), flow("b", 0), flow("c", 0))
	if err != nil {
		t.Fatal(err)
	}
	f := func(r8, e1, e2, e3 uint8) bool {
		r := unit.Time(r8)
		o := Outcome{Group: g, Reference: r, Finish: map[string]unit.Time{
			"a": r + unit.Time(e1), "b": r + unit.Time(e2), "c": r + unit.Time(e3),
		}}
		tard, err1 := o.Tardiness()
		cct, err2 := o.CompletionTime()
		if err1 != nil || err2 != nil {
			return false
		}
		return tard.ApproxEq(cct - r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTotalAndWeightedTardiness(t *testing.T) {
	g1 := pipelineGroup(t)
	g2, _ := NewCoflow("c", flow("x", 0))
	g2.Weight = 3
	outs := []Outcome{
		{Group: g1, Reference: 0, Finish: map[string]unit.Time{"f0": 2, "f1": 3, "f2": 5}}, // max tardiness 2
		{Group: g2, Reference: 0, Finish: map[string]unit.Time{"x": 4}},                    // tardiness 4
	}
	total, err := TotalTardiness(outs)
	if err != nil || !total.ApproxEq(6) {
		t.Errorf("TotalTardiness = %v, %v; want 6", total, err)
	}
	weighted, err := WeightedTardiness(outs)
	if err != nil || !weighted.ApproxEq(2+3*4) {
		t.Errorf("WeightedTardiness = %v, %v; want 14", weighted, err)
	}
}

func TestTotalTardinessPropagatesErrors(t *testing.T) {
	g := pipelineGroup(t)
	outs := []Outcome{{Group: g}}
	if _, err := TotalTardiness(outs); err == nil {
		t.Error("TotalTardiness should surface outcome errors")
	}
	if _, err := WeightedTardiness(outs); err == nil {
		t.Error("WeightedTardiness should surface outcome errors")
	}
}
