package core

import (
	"fmt"
	"sort"

	"echelonflow/internal/unit"
)

// EchelonFlow is a set of flows with related ideal finish times
// (Definition 3.1). Flows are held in ascending stage order; the reference
// time r — the start time of the head flow — is supplied by the runtime when
// deadlines are evaluated, because it is only known once the head flow is
// released.
type EchelonFlow struct {
	ID          string
	Flows       []*Flow
	Arrangement Arrangement
	// Weight scales this group's contribution to the weighted sum-of-
	// tardiness objective (Eq. 4's weighted variant). Zero means 1.
	Weight float64
}

// New builds a validated EchelonFlow. Flows are sorted by stage (stable, so
// intra-stage order follows the caller's order, which by Definition 3.1 is
// ascending start time).
func New(id string, arr Arrangement, flows ...*Flow) (*EchelonFlow, error) {
	if id == "" {
		return nil, fmt.Errorf("core: EchelonFlow must have an ID")
	}
	if arr == nil {
		return nil, fmt.Errorf("core: EchelonFlow %q has no arrangement", id)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("core: EchelonFlow %q has no flows", id)
	}
	seen := make(map[string]bool, len(flows))
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("core: EchelonFlow %q: %w", id, err)
		}
		if seen[f.ID] {
			return nil, fmt.Errorf("core: EchelonFlow %q has duplicate flow %q", id, f.ID)
		}
		seen[f.ID] = true
	}
	sorted := append([]*Flow(nil), flows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Stage < sorted[j].Stage })
	return &EchelonFlow{ID: id, Flows: sorted, Arrangement: arr}, nil
}

// NewCoflow builds a Coflow presented as an EchelonFlow (Property 2): all
// flows share stage 0 and the ideal finish time equals the reference time.
func NewCoflow(id string, flows ...*Flow) (*EchelonFlow, error) {
	for _, f := range flows {
		f.Stage = 0
	}
	return New(id, Coflow{}, flows...)
}

// IsCoflow reports whether the group is a plain Coflow — all deadlines
// collapse onto the reference time (the Coflow-compliant column of Table 1).
func (g *EchelonFlow) IsCoflow() bool {
	_, ok := g.Arrangement.(Coflow)
	if ok {
		return true
	}
	// Structurally coflow: every stage's deadline equals r.
	for _, f := range g.Flows {
		if !g.Arrangement.Deadline(f.Stage, 0).ApproxEq(0) {
			return false
		}
	}
	return true
}

// Head returns the head flow — the flow that starts first and whose start
// time defines the reference time (§3.1).
func (g *EchelonFlow) Head() *Flow { return g.Flows[0] }

// Flow returns the member flow with the given ID, or nil.
func (g *EchelonFlow) Flow(id string) *Flow {
	for _, f := range g.Flows {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// Deadlines evaluates the arrangement function at reference time r,
// returning the ideal finish time of each flow in group order (the set D of
// Definition 3.1).
func (g *EchelonFlow) Deadlines(r unit.Time) []unit.Time {
	out := make([]unit.Time, len(g.Flows))
	for i, f := range g.Flows {
		out[i] = g.Arrangement.Deadline(f.Stage, r)
	}
	return out
}

// Deadline evaluates a single flow's ideal finish time at reference r.
// Unknown flow IDs return an error.
func (g *EchelonFlow) Deadline(flowID string, r unit.Time) (unit.Time, error) {
	f := g.Flow(flowID)
	if f == nil {
		return 0, fmt.Errorf("core: EchelonFlow %q has no flow %q", g.ID, flowID)
	}
	return g.Arrangement.Deadline(f.Stage, r), nil
}

// TotalSize returns the summed volume of all member flows.
func (g *EchelonFlow) TotalSize() unit.Bytes {
	var s unit.Bytes
	for _, f := range g.Flows {
		s += f.Size
	}
	return s
}

// EffectiveWeight returns the group's weight, defaulting to 1.
func (g *EchelonFlow) EffectiveWeight() float64 {
	if g.Weight <= 0 {
		return 1
	}
	return g.Weight
}

// String renders the group for traces.
func (g *EchelonFlow) String() string {
	return fmt.Sprintf("EchelonFlow(%s, %s, %d flows, %.4g bytes)",
		g.ID, g.Arrangement.Name(), len(g.Flows), float64(g.TotalSize()))
}
