package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/unit"
)

func TestCoflowDeadlines(t *testing.T) {
	// Eq. 5: d_j = r for all j.
	a := Coflow{}
	for _, stage := range []int{0, 1, 5, 100} {
		if got := a.Deadline(stage, 7); got != 7 {
			t.Errorf("Coflow.Deadline(%d, 7) = %v, want 7", stage, got)
		}
	}
	if a.Stages() != 0 || a.Name() != "coflow" {
		t.Error("Coflow metadata wrong")
	}
}

func TestPipelineDeadlines(t *testing.T) {
	// Eq. 6: d_0 = r, d_j = d_{j-1} + T.
	a := Pipeline{T: 2.5}
	tests := []struct {
		stage int
		r     unit.Time
		want  unit.Time
	}{
		{0, 0, 0},
		{1, 0, 2.5},
		{3, 0, 7.5},
		{2, 10, 15},
		{-1, 4, 4}, // clamped to head
	}
	for _, tt := range tests {
		if got := a.Deadline(tt.stage, tt.r); !got.ApproxEq(tt.want) {
			t.Errorf("Pipeline.Deadline(%d, %v) = %v, want %v", tt.stage, tt.r, got, tt.want)
		}
	}
	if a.Name() != "pipeline" || a.Stages() != 0 {
		t.Error("Pipeline metadata wrong")
	}
}

func TestFSDPArrangement(t *testing.T) {
	// Eq. 7 with n=3 layers, T_fwd=1, T_bwd=2:
	// d_c0 = r, d_c1 = r+1, d_c2 = r+2 (forward),
	// d_c3 = r+4, d_c4 = r+6, d_c5 = r+8 (backward).
	a, err := NewFSDP(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []unit.Time{0, 1, 2, 4, 6, 8}
	if a.Stages() != len(want) {
		t.Fatalf("Stages = %d, want %d", a.Stages(), len(want))
	}
	for i, w := range want {
		if got := a.Deadline(i, 0); !got.ApproxEq(w) {
			t.Errorf("FSDP.Deadline(%d) = %v, want %v", i, got, w)
		}
	}
	// Beyond range clamps.
	if got := a.Deadline(99, 0); !got.ApproxEq(8) {
		t.Errorf("clamped deadline = %v, want 8", got)
	}
}

func TestFSDPSingleLayer(t *testing.T) {
	a, err := NewFSDP(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One layer: stage 0 (fwd AG) and stage 1 (bwd AG), gap T_bwd.
	if a.Stages() != 2 {
		t.Fatalf("Stages = %d, want 2", a.Stages())
	}
	if got := a.Deadline(1, 0); !got.ApproxEq(2) {
		t.Errorf("Deadline(1) = %v, want 2", got)
	}
}

func TestFSDPErrors(t *testing.T) {
	if _, err := NewFSDP(0, 1, 1); err == nil {
		t.Error("0 layers accepted")
	}
	if _, err := NewFSDP(2, -1, 1); err == nil {
		t.Error("negative tFwd accepted")
	}
}

func TestAbsolute(t *testing.T) {
	a, err := NewAbsolute([]unit.Time{0, 1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Deadline(2, 10); !got.ApproxEq(11) {
		t.Errorf("Deadline(2,10) = %v", got)
	}
	if got := a.Deadline(9, 0); !got.ApproxEq(4) {
		t.Errorf("clamped = %v", got)
	}
	if got := a.Deadline(-3, 5); !got.ApproxEq(5) {
		t.Errorf("negative stage = %v", got)
	}
	if a.Stages() != 4 || a.Name() != "absolute" {
		t.Error("Absolute metadata wrong")
	}
}

func TestAbsoluteErrors(t *testing.T) {
	if _, err := NewAbsolute(nil); err == nil {
		t.Error("empty offsets accepted")
	}
	if _, err := NewAbsolute([]unit.Time{1, 2}); err == nil {
		t.Error("nonzero head offset accepted")
	}
	if _, err := NewAbsolute([]unit.Time{0, 3, 2}); err == nil {
		t.Error("decreasing offsets accepted")
	}
}

func TestAbsoluteCopiesInput(t *testing.T) {
	offs := []unit.Time{0, 1}
	a, err := NewAbsolute(offs)
	if err != nil {
		t.Fatal(err)
	}
	offs[1] = 99
	if got := a.Deadline(1, 0); !got.ApproxEq(1) {
		t.Error("NewAbsolute aliases caller slice")
	}
}

// Every arrangement must satisfy Deadline(0, r) == r and monotonicity in
// stage (the definition in §3.1: later flows never have earlier ideal
// finish times).
func TestArrangementInvariants(t *testing.T) {
	fsdp, _ := NewFSDP(4, 0.5, 1.5)
	abs, _ := NewAbsolute([]unit.Time{0, 0.5, 2})
	arrs := []Arrangement{
		Coflow{},
		Pipeline{T: 1.25},
		fsdp,
		abs,
		Staged{Gaps: []unit.Time{1, 2, 3}},
	}
	for _, a := range arrs {
		f := func(rawR float64, rawStage uint8) bool {
			r := unit.Time(rawR)
			stage := int(rawStage % 40)
			d0 := a.Deadline(0, r)
			if !d0.ApproxEq(r) {
				return false
			}
			return a.Deadline(stage+1, r) >= a.Deadline(stage, r)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
			t.Errorf("arrangement %s violates invariants: %v", a.Name(), err)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	fsdp, _ := NewFSDP(2, 1, 3)
	abs, _ := NewAbsolute([]unit.Time{0, 2, 5})
	arrs := []Arrangement{Coflow{}, Pipeline{T: 4}, fsdp, abs}
	for _, a := range arrs {
		spec, err := SpecOf(a)
		if err != nil {
			t.Fatalf("SpecOf(%s): %v", a.Name(), err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%s): %v", a.Name(), err)
		}
		if back.Name() != a.Name() {
			t.Errorf("round trip changed kind: %s -> %s", a.Name(), back.Name())
		}
		for stage := 0; stage < 6; stage++ {
			if !back.Deadline(stage, 3).ApproxEq(a.Deadline(stage, 3)) {
				t.Errorf("%s: deadline mismatch at stage %d", a.Name(), stage)
			}
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := (Spec{Kind: "mystery"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (Spec{Kind: "pipeline", T: -1}).Build(); err == nil {
		t.Error("negative pipeline T accepted")
	}
	if _, err := (Spec{Kind: "staged", Gaps: []unit.Time{-1}}).Build(); err == nil {
		t.Error("negative gap accepted")
	}
	if _, err := (Spec{Kind: "absolute", Offs: []unit.Time{1}}).Build(); err == nil {
		t.Error("bad absolute offsets accepted")
	}
	type unknown struct{ Arrangement }
	if _, err := SpecOf(unknown{}); err == nil {
		t.Error("SpecOf of unknown type accepted")
	}
}
