// Package core implements the EchelonFlow network abstraction of the paper
// (§3): flows, EchelonFlows, arrangement functions, ideal finish times, and
// the tardiness objectives.
//
// An EchelonFlow is a set of semantically related flows whose *ideal finish
// times* are staggered according to the job's computation arrangement.
// Deadlines are all derived from a single reference time — the start time of
// the head flow — so a flow delayed by earlier congestion receives an ideal
// finish time that may lie before its own start, giving the scheduler the
// signal to let it catch up and restore the echelon formation (§3.1, Fig. 6).
package core

import (
	"fmt"

	"echelonflow/internal/unit"
)

// Flow is one network transfer inside an EchelonFlow. The fields mirror the
// per-flow information the paper's framework reports to the EchelonFlow
// Agent (§5): size, source, and destination — plus the stage index locating
// the flow inside its group's arrangement.
type Flow struct {
	// ID is unique within a workload.
	ID string
	// Src and Dst are fabric host names.
	Src, Dst string
	// Size is the transfer volume.
	Size unit.Bytes
	// Stage indexes the flow's position in the group's arrangement:
	// the micro-batch number in pipeline parallelism, the layer/phase
	// Coflow index in FSDP, always 0 in a plain Coflow.
	Stage int
}

// Validate checks the flow is well formed.
func (f *Flow) Validate() error {
	if f.ID == "" {
		return fmt.Errorf("core: flow must have an ID")
	}
	if f.Src == "" || f.Dst == "" {
		return fmt.Errorf("core: flow %q missing src/dst", f.ID)
	}
	if f.Src == f.Dst {
		return fmt.Errorf("core: flow %q has src == dst (%s)", f.ID, f.Src)
	}
	if f.Size < 0 {
		return fmt.Errorf("core: flow %q has negative size", f.ID)
	}
	if f.Stage < 0 {
		return fmt.Errorf("core: flow %q has negative stage", f.ID)
	}
	return nil
}

// String renders the flow for traces.
func (f *Flow) String() string {
	return fmt.Sprintf("%s[%s→%s %.4g @stage %d]", f.ID, f.Src, f.Dst, float64(f.Size), f.Stage)
}
