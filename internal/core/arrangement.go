package core

import (
	"fmt"

	"echelonflow/internal/unit"
)

// Arrangement is the paper's arrangement function g(D, r): it derives the
// ideal finish time of every stage of an EchelonFlow from the group's
// reference time r (§3.1). The "shape" is encoded by the implementation, the
// "distance" by its parameters (profiled computation times).
type Arrangement interface {
	// Deadline returns the ideal finish time of the given stage when the
	// group's reference time is r. Implementations must be monotone
	// non-decreasing in stage and satisfy Deadline(0, r) == r.
	Deadline(stage int, r unit.Time) unit.Time
	// Stages returns the number of stages the arrangement describes, or 0
	// if it extends to arbitrarily many stages (e.g. an unbounded pipeline).
	Stages() int
	// Name identifies the arrangement kind for traces and the wire protocol.
	Name() string
}

// Coflow is the degenerate arrangement of Eq. 5: every flow shares the
// reference time as its ideal finish time, so minimizing maximum tardiness
// reduces to minimizing Coflow completion time (Property 2).
type Coflow struct{}

// Deadline implements Arrangement: d_j = r for every stage.
func (Coflow) Deadline(stage int, r unit.Time) unit.Time { return r }

// Stages implements Arrangement; a Coflow has a single stage repeated.
func (Coflow) Stages() int { return 0 }

// Name implements Arrangement.
func (Coflow) Name() string { return "coflow" }

// Pipeline is the arrangement of Eq. 6 (pipeline parallelism, GPipe-style):
// consecutive stages' ideal finish times are separated by the profiled
// per-micro-batch computation time T.
type Pipeline struct {
	// T is the computation time of one micro-batch on the consuming worker.
	T unit.Time
}

// Deadline implements Arrangement: d_0 = r, d_j = d_{j-1} + T.
func (p Pipeline) Deadline(stage int, r unit.Time) unit.Time {
	if stage < 0 {
		stage = 0
	}
	return r + unit.Time(stage)*p.T
}

// Stages implements Arrangement; pipelines extend indefinitely.
func (Pipeline) Stages() int { return 0 }

// Name implements Arrangement.
func (Pipeline) Name() string { return "pipeline" }

// Staged is the general staggered arrangement: stage i's ideal finish time
// trails stage i-1's by Gaps[i-1]. Eq. 7's FSDP arrangement is a Staged
// with n-1 forward gaps of T_fwd followed by n backward gaps of T_bwd.
// Stages beyond the described range clamp to the final deadline.
type Staged struct {
	// Gaps[i] is the distance between the deadlines of stage i and stage
	// i+1. A Staged with k gaps describes k+1 stages.
	Gaps []unit.Time
}

// NewFSDP builds the Eq. 7 arrangement for an n-layer network: Coflow
// deadlines advance by tFwd through the forward phase (stages 0..n-1) and by
// tBwd through the backward phase (stages n..2n-1).
func NewFSDP(layers int, tFwd, tBwd unit.Time) (Staged, error) {
	if layers < 1 {
		return Staged{}, fmt.Errorf("core: FSDP arrangement needs >=1 layer, got %d", layers)
	}
	if tFwd < 0 || tBwd < 0 {
		return Staged{}, fmt.Errorf("core: FSDP arrangement needs non-negative phase times")
	}
	gaps := make([]unit.Time, 0, 2*layers-1)
	for i := 1; i <= layers-1; i++ {
		gaps = append(gaps, tFwd)
	}
	for i := layers; i <= 2*layers-1; i++ {
		gaps = append(gaps, tBwd)
	}
	return Staged{Gaps: gaps}, nil
}

// Deadline implements Arrangement.
func (s Staged) Deadline(stage int, r unit.Time) unit.Time {
	if stage < 0 {
		stage = 0
	}
	if stage > len(s.Gaps) {
		stage = len(s.Gaps)
	}
	d := r
	for i := 0; i < stage; i++ {
		d += s.Gaps[i]
	}
	return d
}

// Stages implements Arrangement.
func (s Staged) Stages() int { return len(s.Gaps) + 1 }

// Name implements Arrangement.
func (Staged) Name() string { return "staged" }

// Absolute pins each stage's ideal finish time at a fixed offset from the
// reference time. It expresses arrangements derived directly from a
// profiled computation DAG (the paper's "more complicated" PP variants,
// §4 Case II). Offsets must be non-decreasing and start at 0.
type Absolute struct {
	// Offsets[i] is stage i's distance from the reference time.
	Offsets []unit.Time
}

// NewAbsolute validates and builds an Absolute arrangement.
func NewAbsolute(offsets []unit.Time) (Absolute, error) {
	if len(offsets) == 0 {
		return Absolute{}, fmt.Errorf("core: absolute arrangement needs >=1 offset")
	}
	if offsets[0] != 0 {
		return Absolute{}, fmt.Errorf("core: absolute arrangement must start at offset 0 (head flow), got %v", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return Absolute{}, fmt.Errorf("core: absolute offsets must be non-decreasing (offset %d: %v < %v)", i, offsets[i], offsets[i-1])
		}
	}
	return Absolute{Offsets: append([]unit.Time(nil), offsets...)}, nil
}

// Deadline implements Arrangement. Stages beyond the described range clamp
// to the final offset.
func (a Absolute) Deadline(stage int, r unit.Time) unit.Time {
	if len(a.Offsets) == 0 {
		return r
	}
	if stage < 0 {
		stage = 0
	}
	if stage >= len(a.Offsets) {
		stage = len(a.Offsets) - 1
	}
	return r + a.Offsets[stage]
}

// Stages implements Arrangement.
func (a Absolute) Stages() int { return len(a.Offsets) }

// Name implements Arrangement.
func (Absolute) Name() string { return "absolute" }

// Spec is the serializable description of an arrangement, used by the wire
// protocol between Agent and Coordinator (§5: the framework reports the
// arrangement function to the agent).
type Spec struct {
	Kind string      `json:"kind"`
	T    unit.Time   `json:"t,omitempty"`    // pipeline distance
	Gaps []unit.Time `json:"gaps,omitempty"` // staged distances
	Offs []unit.Time `json:"offs,omitempty"` // absolute offsets
}

// SpecOf captures a serializable spec of a known arrangement kind.
func SpecOf(a Arrangement) (Spec, error) {
	switch v := a.(type) {
	case Coflow:
		return Spec{Kind: "coflow"}, nil
	case Pipeline:
		return Spec{Kind: "pipeline", T: v.T}, nil
	case Staged:
		return Spec{Kind: "staged", Gaps: append([]unit.Time(nil), v.Gaps...)}, nil
	case Absolute:
		return Spec{Kind: "absolute", Offs: append([]unit.Time(nil), v.Offsets...)}, nil
	default:
		return Spec{}, fmt.Errorf("core: arrangement %T is not serializable", a)
	}
}

// Build reconstructs the arrangement a Spec describes.
func (s Spec) Build() (Arrangement, error) {
	switch s.Kind {
	case "coflow":
		return Coflow{}, nil
	case "pipeline":
		if s.T < 0 {
			return nil, fmt.Errorf("core: pipeline spec with negative T")
		}
		return Pipeline{T: s.T}, nil
	case "staged":
		for i, g := range s.Gaps {
			if g < 0 {
				return nil, fmt.Errorf("core: staged spec with negative gap %d", i)
			}
		}
		return Staged{Gaps: append([]unit.Time(nil), s.Gaps...)}, nil
	case "absolute":
		return NewAbsolute(s.Offs)
	default:
		return nil, fmt.Errorf("core: unknown arrangement kind %q", s.Kind)
	}
}
