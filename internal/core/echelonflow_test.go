package core

import (
	"strings"
	"testing"

	"echelonflow/internal/unit"
)

func flow(id string, stage int) *Flow {
	return &Flow{ID: id, Src: "w1", Dst: "w2", Size: 10, Stage: stage}
}

func TestFlowValidate(t *testing.T) {
	tests := []struct {
		name    string
		f       *Flow
		wantErr bool
	}{
		{"ok", &Flow{ID: "f", Src: "a", Dst: "b", Size: 1}, false},
		{"no id", &Flow{Src: "a", Dst: "b"}, true},
		{"no src", &Flow{ID: "f", Dst: "b"}, true},
		{"no dst", &Flow{ID: "f", Src: "a"}, true},
		{"self loop", &Flow{ID: "f", Src: "a", Dst: "a"}, true},
		{"negative size", &Flow{ID: "f", Src: "a", Dst: "b", Size: -1}, true},
		{"negative stage", &Flow{ID: "f", Src: "a", Dst: "b", Stage: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.f.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewSortsByStage(t *testing.T) {
	g, err := New("g", Pipeline{T: 1}, flow("f2", 2), flow("f0", 0), flow("f1", 1))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(g.Flows))
	for i, f := range g.Flows {
		ids[i] = f.ID
	}
	if strings.Join(ids, ",") != "f0,f1,f2" {
		t.Errorf("flows = %v", ids)
	}
	if g.Head().ID != "f0" {
		t.Errorf("Head = %s", g.Head().ID)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("", Coflow{}, flow("f", 0)); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := New("g", nil, flow("f", 0)); err == nil {
		t.Error("nil arrangement accepted")
	}
	if _, err := New("g", Coflow{}); err == nil {
		t.Error("no flows accepted")
	}
	if _, err := New("g", Coflow{}, flow("dup", 0), flow("dup", 1)); err == nil {
		t.Error("duplicate flow ID accepted")
	}
	bad := &Flow{ID: "f", Src: "a", Dst: "a", Size: 1}
	if _, err := New("g", Coflow{}, bad); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestNewCoflowForcesStageZero(t *testing.T) {
	g, err := NewCoflow("c", flow("a", 3), flow("b", 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Flows {
		if f.Stage != 0 {
			t.Errorf("flow %s stage = %d, want 0", f.ID, f.Stage)
		}
	}
	if !g.IsCoflow() {
		t.Error("NewCoflow result not IsCoflow")
	}
}

func TestIsCoflow(t *testing.T) {
	pipe, _ := New("p", Pipeline{T: 1}, flow("a", 0), flow("b", 1))
	if pipe.IsCoflow() {
		t.Error("pipeline with staggered stages reported as coflow")
	}
	// A degenerate pipeline (T=0) is structurally a coflow.
	degen, _ := New("d", Pipeline{T: 0}, flow("a", 0), flow("b", 1))
	if !degen.IsCoflow() {
		t.Error("zero-distance pipeline should be structurally coflow")
	}
}

func TestDeadlines(t *testing.T) {
	g, _ := New("g", Pipeline{T: 2}, flow("a", 0), flow("b", 1), flow("c", 2))
	got := g.Deadlines(5)
	want := []unit.Time{5, 7, 9}
	for i := range want {
		if !got[i].ApproxEq(want[i]) {
			t.Errorf("Deadlines[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	d, err := g.Deadline("c", 5)
	if err != nil || !d.ApproxEq(9) {
		t.Errorf("Deadline(c) = %v, %v", d, err)
	}
	if _, err := g.Deadline("zz", 5); err == nil {
		t.Error("unknown flow accepted")
	}
}

// Fig. 6 semantics: deadlines derive from the reference time, not per-flow
// start times, so a delayed flow's ideal finish can precede its own start.
func TestDelayOffsetting(t *testing.T) {
	g, _ := New("g", Pipeline{T: 1}, flow("f0", 0), flow("f1", 1), flow("f2", 2))
	r := unit.Time(0)
	deadlines := g.Deadlines(r)
	// Suppose f1 was delayed and only starts at t=3 (> its deadline of 1).
	f1Start := unit.Time(3)
	if deadlines[1] >= f1Start {
		t.Fatalf("test setup: deadline %v should precede start %v", deadlines[1], f1Start)
	}
	// Its tardiness at any finish e is measured against the ideal finish
	// derived from r, giving it "opportunities to transmit faster and catch
	// up" (§3.1): finishing at 3.5 yields tardiness 2.5, not 0.5.
	if got := FlowTardiness(3.5, deadlines[1]); !got.ApproxEq(2.5) {
		t.Errorf("offset tardiness = %v, want 2.5", got)
	}
}

func TestTotalSizeAndString(t *testing.T) {
	g, _ := New("g", Coflow{}, flow("a", 0), flow("b", 0))
	if g.TotalSize() != 20 {
		t.Errorf("TotalSize = %v", g.TotalSize())
	}
	if !strings.Contains(g.String(), "coflow") || !strings.Contains(g.String(), "2 flows") {
		t.Errorf("String = %q", g.String())
	}
	f := g.Flow("a")
	if f == nil || !strings.Contains(f.String(), "w1→w2") {
		t.Errorf("Flow String = %v", f)
	}
	if g.Flow("none") != nil {
		t.Error("Flow(none) should be nil")
	}
}

func TestEffectiveWeight(t *testing.T) {
	g, _ := New("g", Coflow{}, flow("a", 0))
	if g.EffectiveWeight() != 1 {
		t.Errorf("default weight = %v", g.EffectiveWeight())
	}
	g.Weight = 2.5
	if g.EffectiveWeight() != 2.5 {
		t.Errorf("explicit weight = %v", g.EffectiveWeight())
	}
}
