package ratelimit

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNewBucketValidation(t *testing.T) {
	if _, err := NewBucket(-1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewBucket(1, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestTryTakeAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b, err := newBucketAt(10, 5, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	// Starts full: 5 tokens available.
	if _, ok := b.tryTake(5); !ok {
		t.Fatal("full bucket refused")
	}
	wait, ok := b.tryTake(2)
	if ok {
		t.Fatal("empty bucket granted")
	}
	if wait != 200*time.Millisecond {
		t.Errorf("wait = %v, want 200ms (2 tokens at 10/s)", wait)
	}
	clk.advance(200 * time.Millisecond)
	if _, ok := b.tryTake(2); !ok {
		t.Error("refilled tokens not granted")
	}
}

func TestAllow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b, err := newBucketAt(1, 2, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0) {
		t.Error("zero-token request refused")
	}
	if !b.Allow(1) || !b.Allow(1) {
		t.Error("burst not granted")
	}
	if b.Allow(1) {
		t.Error("drained bucket granted without waiting")
	}
	clk.advance(time.Second)
	if !b.Allow(1) {
		t.Error("refilled token refused")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b, _ := newBucketAt(100, 3, clk.now)
	clk.advance(time.Hour)
	if _, ok := b.tryTake(3); !ok {
		t.Error("burst not available")
	}
	if _, ok := b.tryTake(0.5); ok {
		t.Error("tokens beyond burst granted")
	}
}

func TestSetRate(t *testing.T) {
	b, _ := NewBucket(1, 1)
	b.SetRate(42)
	if b.Rate() != 42 {
		t.Errorf("Rate = %v", b.Rate())
	}
	b.SetRate(-5)
	if b.Rate() != 0 {
		t.Errorf("negative SetRate should clamp to 0, got %v", b.Rate())
	}
}

func TestWaitGrantsOverTime(t *testing.T) {
	// Real-clock test with generous margins: 1000 tokens/s, need 100 after
	// draining the burst => ~100ms.
	b, _ := NewBucket(1000, 100)
	ctx := context.Background()
	if err := b.Wait(ctx, 100); err != nil { // drain burst
		t.Fatal(err)
	}
	start := time.Now()
	if err := b.Wait(ctx, 50); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Errorf("wait returned too fast: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("wait took too long: %v", elapsed)
	}
}

func TestWaitExceedsBurst(t *testing.T) {
	b, _ := NewBucket(10, 5)
	if err := b.Wait(context.Background(), 6); err == nil {
		t.Error("request above burst accepted")
	}
	if err := b.Wait(context.Background(), 0); err != nil {
		t.Errorf("zero-token wait errored: %v", err)
	}
}

func TestWaitCancellation(t *testing.T) {
	b, _ := NewBucket(0, 10) // paused
	drain := context.Background()
	if err := b.Wait(drain, 10); err != nil { // burst grants immediately
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := b.Wait(ctx, 1)
	if err == nil {
		t.Fatal("paused bucket granted tokens")
	}
	if ctx.Err() == nil {
		t.Error("expected context expiry")
	}
}

func TestWaitWakesOnRateChange(t *testing.T) {
	b, _ := NewBucket(0, 10)
	if err := b.Wait(context.Background(), 10); err != nil { // drain burst
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Wait(context.Background(), 5) }()
	time.Sleep(20 * time.Millisecond)
	b.SetRate(1e6) // effectively instant refill
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Wait after rate change: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on SetRate")
	}
}

func TestConcurrentWaiters(t *testing.T) {
	b, _ := NewBucket(1e6, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- b.Wait(context.Background(), 500)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent Wait: %v", err)
		}
	}
}
