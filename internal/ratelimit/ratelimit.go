// Package ratelimit implements the token-bucket pacing the EchelonFlow
// Agent uses to enforce Coordinator-assigned bandwidth on real sockets —
// the "weighted sharing of network bandwidth among the queues" of the
// paper's §5, realized per flow.
package ratelimit

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Bucket is a token bucket: tokens accrue at Rate per second up to Burst,
// and Wait blocks until the requested tokens are available. A rate of zero
// pauses the flow; SetRate wakes waiters.
type Bucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	tokens  float64
	last    time.Time
	changed chan struct{} // closed and replaced on SetRate
	now     func() time.Time
}

// NewBucket returns a bucket starting full at the given rate.
func NewBucket(rate, burst float64) (*Bucket, error) {
	if rate < 0 {
		return nil, fmt.Errorf("ratelimit: negative rate %v", rate)
	}
	if burst <= 0 {
		return nil, fmt.Errorf("ratelimit: burst must be positive, got %v", burst)
	}
	b := &Bucket{
		rate: rate, burst: burst, tokens: burst,
		changed: make(chan struct{}),
		now:     time.Now,
	}
	b.last = b.now()
	return b, nil
}

// newBucketAt is the test constructor with an injected clock.
func newBucketAt(rate, burst float64, now func() time.Time) (*Bucket, error) {
	b, err := NewBucket(rate, burst)
	if err != nil {
		return nil, err
	}
	b.now = now
	b.last = now()
	return b, nil
}

// Rate returns the current refill rate.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// SetRate changes the refill rate and wakes any waiters so they can
// recompute their wait. Negative rates clamp to zero (paused).
func (b *Bucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if rate < 0 {
		rate = 0
	}
	b.rate = rate
	close(b.changed)
	b.changed = make(chan struct{})
}

// refillLocked accrues tokens for elapsed time.
func (b *Bucket) refillLocked() {
	now := b.now()
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// tryTake consumes n tokens if available, otherwise returns how long to
// wait at the current rate (or -1 when the bucket is paused).
func (b *Bucket) tryTake(n float64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	if b.rate <= 0 {
		return -1, false
	}
	need := (n - b.tokens) / b.rate
	return time.Duration(need * float64(time.Second)), false
}

// Allow consumes n tokens if they are immediately available and reports
// whether it did — the non-blocking admission-control variant of Wait.
func (b *Bucket) Allow(n float64) bool {
	if n <= 0 {
		return true
	}
	_, ok := b.tryTake(n)
	return ok
}

// Wait blocks until n tokens are consumed, the context is cancelled, or n
// exceeds the burst (an error: it could never be satisfied).
func (b *Bucket) Wait(ctx context.Context, n float64) error {
	if n <= 0 {
		return nil
	}
	if n > b.burst {
		return fmt.Errorf("ratelimit: request %v exceeds burst %v", n, b.burst)
	}
	for {
		wait, ok := b.tryTake(n)
		if ok {
			return nil
		}
		b.mu.Lock()
		changed := b.changed
		b.mu.Unlock()
		if wait < 0 {
			// Paused: wake only on rate change or cancellation.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-changed:
			}
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-changed:
			timer.Stop()
		case <-timer.C:
		}
	}
}
