package topology

import (
	"strings"
	"testing"

	"echelonflow/internal/unit"
)

func cluster(t *testing.T) *Cluster {
	t.Helper()
	c := New()
	for _, h := range []string{"n0", "n1", "n2"} {
		if err := c.AddHost(h, 4, 8, 8); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddHostValidation(t *testing.T) {
	c := New()
	cases := []struct {
		name string
		gpus int
		cap  float64
	}{
		{"", 4, 8}, {"h", 0, 8}, {"h", 4, 0},
	}
	for i, tc := range cases {
		if err := c.AddHost(tc.name, tc.gpus, unit.Rate(tc.cap), unit.Rate(tc.cap)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := c.AddHost("h", 2, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost("h", 2, 4, 4); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestFabricSplitsNIC(t *testing.T) {
	c := cluster(t)
	net := c.Fabric()
	if net.Len() != 12 {
		t.Fatalf("fabric endpoints = %d", net.Len())
	}
	h := net.Host(SlotName("n0", 2))
	if h == nil || h.Egress != 2 || h.Ingress != 2 {
		t.Errorf("slot host = %+v, want 8/4 = 2 per direction", h)
	}
}

func TestPlacePacked(t *testing.T) {
	c := cluster(t)
	p, err := c.Place("job", 6, Packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slots) != 6 {
		t.Fatalf("slots = %v", p.Slots)
	}
	// Packed fills n0 fully then n1.
	for i := 0; i < 4; i++ {
		if !strings.HasPrefix(p.Slots[i], "n0/") {
			t.Errorf("slot %d = %s, want n0", i, p.Slots[i])
		}
	}
	for i := 4; i < 6; i++ {
		if !strings.HasPrefix(p.Slots[i], "n1/") {
			t.Errorf("slot %d = %s, want n1", i, p.Slots[i])
		}
	}
	if f := c.Fragmentation(p); f != 0 {
		t.Errorf("packed fragmentation = %d", f)
	}
	if c.FreeGPUs() != 6 {
		t.Errorf("free GPUs = %d", c.FreeGPUs())
	}
}

func TestPlaceSpread(t *testing.T) {
	c := cluster(t)
	p, err := c.Place("job", 3, Spread)
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for _, s := range p.Slots {
		hosts[strings.Split(s, "/")[0]] = true
	}
	if len(hosts) != 3 {
		t.Errorf("spread slots = %v, want 3 distinct hosts", p.Slots)
	}
	// A 3-GPU job could fit on one host: fragmentation = 2.
	if f := c.Fragmentation(p); f != 2 {
		t.Errorf("fragmentation = %d, want 2", f)
	}
}

func TestPlaceErrors(t *testing.T) {
	c := cluster(t)
	if _, err := c.Place("", 1, Packed); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := c.Place("j", 0, Packed); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := c.Place("j", 13, Packed); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := c.Place("j", 2, Strategy(9)); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := c.Place("j", 2, Packed); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("j", 2, Packed); err == nil {
		t.Error("double placement accepted")
	}
}

func TestRelease(t *testing.T) {
	c := cluster(t)
	p, _ := c.Place("a", 12, Packed)
	if c.FreeGPUs() != 0 {
		t.Fatal("cluster should be full")
	}
	c.Release("a")
	if c.FreeGPUs() != 12 {
		t.Errorf("free after release = %d", c.FreeGPUs())
	}
	_ = p
}

// Fragmentation from churn: a job placed after partial releases lands on
// scattered slots — the §5 motivation for cross-host scheduling.
func TestFragmentationFromChurn(t *testing.T) {
	c := cluster(t)
	if _, err := c.Place("a", 3, Packed); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("b", 3, Packed); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("c", 3, Packed); err != nil {
		t.Fatal(err)
	}
	c.Release("b") // frees 1 slot on n1 and 2 on... (a:4? no, a took 3 on n0)
	p, err := c.Place("d", 4, Packed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fragmentation(p) < 1 {
		t.Errorf("expected fragmentation after churn, slots = %v", p.Slots)
	}
}

func TestStrategyString(t *testing.T) {
	if Packed.String() != "packed" || Spread.String() != "spread" {
		t.Error("strategy names wrong")
	}
	if Strategy(7).String() != "strategy(7)" {
		t.Error("unknown strategy string wrong")
	}
}
