// Package topology models the multi-tenant GPU cluster EchelonFlow targets
// (§5): hosts with several GPUs behind one NIC, where jobs receive GPU
// slots that may be fragmented across hosts. Placement produces the worker
// names a workload compiler consumes and the fabric the flows contend on.
//
// Each GPU slot appears as its own fabric endpoint; a host's NIC capacity
// is split evenly across its GPUs. This static split is a conservative
// approximation of NIC sharing between co-located workers — it preserves
// the property the paper cares about (co-located tenants contend for host
// bandwidth) without modelling per-packet multiplexing.
package topology

import (
	"fmt"
	"sort"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// Strategy selects how Place picks GPU slots.
type Strategy int

const (
	// Packed fills hosts in order, minimizing the number of hosts a job
	// spans (and so its cross-host traffic).
	Packed Strategy = iota
	// Spread round-robins across the emptiest hosts, the
	// fragmentation-inducing pattern of busy clusters.
	Spread
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Packed:
		return "packed"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

type host struct {
	name    string
	gpus    int
	egress  unit.Rate
	ingress unit.Rate
	used    map[int]string // gpu index -> owning job
}

// Cluster is a set of multi-GPU hosts.
//
// The zero value is not ready for use; call New.
type Cluster struct {
	hosts map[string]*host
	names []string
}

// New returns an empty cluster.
func New() *Cluster {
	return &Cluster{hosts: make(map[string]*host)}
}

// AddHost registers a host with the given GPU count and NIC capacities.
func (c *Cluster) AddHost(name string, gpus int, egress, ingress unit.Rate) error {
	if name == "" {
		return fmt.Errorf("topology: host must have a name")
	}
	if gpus < 1 {
		return fmt.Errorf("topology: host %q needs >=1 GPU", name)
	}
	if egress <= 0 || ingress <= 0 {
		return fmt.Errorf("topology: host %q needs positive NIC capacity", name)
	}
	if _, ok := c.hosts[name]; ok {
		return fmt.Errorf("topology: duplicate host %q", name)
	}
	c.hosts[name] = &host{name: name, gpus: gpus, egress: egress, ingress: ingress, used: make(map[int]string)}
	c.names = append(c.names, name)
	return nil
}

// SlotName is the fabric endpoint name of a GPU slot.
func SlotName(hostName string, gpu int) string {
	return fmt.Sprintf("%s/g%d", hostName, gpu)
}

// Fabric builds the network the cluster exposes: one endpoint per GPU slot,
// NIC capacity divided evenly among the host's GPUs.
func (c *Cluster) Fabric() *fabric.Network {
	net := fabric.NewNetwork()
	for _, name := range c.names {
		h := c.hosts[name]
		for g := 0; g < h.gpus; g++ {
			// Per-slot share of the host NIC.
			eg := h.egress / unit.Rate(h.gpus)
			in := h.ingress / unit.Rate(h.gpus)
			if err := net.AddHost(SlotName(name, g), eg, in); err != nil {
				// Unreachable: slot names are unique by construction.
				panic(err)
			}
		}
	}
	return net
}

// Placement records the GPU slots assigned to a job, in worker order.
type Placement struct {
	Job   string
	Slots []string
}

// FreeGPUs returns the total number of unassigned GPU slots.
func (c *Cluster) FreeGPUs() int {
	n := 0
	for _, h := range c.hosts {
		n += h.gpus - len(h.used)
	}
	return n
}

// Place assigns n GPU slots to a job. Packed fills hosts in registration
// order; Spread repeatedly takes a slot from the host with the most free
// GPUs (ties by name). It fails without side effects if fewer than n slots
// are free or the job already has a placement.
func (c *Cluster) Place(job string, n int, strategy Strategy) (Placement, error) {
	if job == "" {
		return Placement{}, fmt.Errorf("topology: job must have a name")
	}
	if n < 1 {
		return Placement{}, fmt.Errorf("topology: job %q needs >=1 GPU", job)
	}
	for _, h := range c.hosts {
		for _, owner := range h.used {
			if owner == job {
				return Placement{}, fmt.Errorf("topology: job %q already placed", job)
			}
		}
	}
	if c.FreeGPUs() < n {
		return Placement{}, fmt.Errorf("topology: job %q needs %d GPUs, only %d free", job, n, c.FreeGPUs())
	}
	var slots []string
	take := func(h *host) bool {
		for g := 0; g < h.gpus; g++ {
			if _, busy := h.used[g]; !busy {
				h.used[g] = job
				slots = append(slots, SlotName(h.name, g))
				return true
			}
		}
		return false
	}
	switch strategy {
	case Packed:
		for _, name := range c.names {
			for len(slots) < n && take(c.hosts[name]) {
			}
			if len(slots) == n {
				break
			}
		}
	case Spread:
		for len(slots) < n {
			var best *host
			for _, name := range c.names {
				h := c.hosts[name]
				free := h.gpus - len(h.used)
				if free == 0 {
					continue
				}
				if best == nil || free > best.gpus-len(best.used) {
					best = h
				}
			}
			take(best)
		}
	default:
		return Placement{}, fmt.Errorf("topology: unknown strategy %v", strategy)
	}
	return Placement{Job: job, Slots: slots}, nil
}

// Release frees every slot a job holds.
func (c *Cluster) Release(job string) {
	for _, h := range c.hosts {
		for g, owner := range h.used {
			if owner == job {
				delete(h.used, g)
			}
		}
	}
}

// Fragmentation returns how many hosts a placement spans beyond the minimum
// possible for its size (0 = as packed as the cluster allows).
func (c *Cluster) Fragmentation(p Placement) int {
	hostsUsed := make(map[string]bool)
	for _, s := range p.Slots {
		for _, name := range c.names {
			h := c.hosts[name]
			for g := 0; g < h.gpus; g++ {
				if SlotName(name, g) == s {
					hostsUsed[name] = true
				}
			}
		}
	}
	// Minimum hosts: pack slots into the largest hosts first.
	sizes := make([]int, 0, len(c.names))
	for _, name := range c.names {
		sizes = append(sizes, c.hosts[name].gpus)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	need := len(p.Slots)
	minHosts := 0
	for _, sz := range sizes {
		if need <= 0 {
			break
		}
		need -= sz
		minHosts++
	}
	return len(hostsUsed) - minHosts
}
