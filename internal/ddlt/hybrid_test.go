package ddlt

import (
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

func hybridJob(iterations int) HybridTPPP {
	return HybridTPPP{
		Name:  "hy",
		Model: Uniform("m", 4, 2, 4, 0.5, 0.5),
		StageWorkers: [][]string{
			{"s0r0", "s0r1"},
			{"s1r0", "s1r1"},
		},
		MicroBatches: 3,
		Iterations:   iterations,
	}
}

func TestHybridBuild(t *testing.T) {
	w, err := hybridJob(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Hosts) != 4 {
		t.Errorf("hosts = %v", w.Hosts)
	}
	// Mixed arrangements: inter-stage pipelines and intra-stage coflows.
	var pipelines, coflows int
	for _, arr := range w.Arrangements {
		switch arr.(type) {
		case core.Pipeline:
			pipelines++
		case core.Coflow:
			coflows++
		}
	}
	if pipelines != 2 { // fwd0 and bwd1
		t.Errorf("pipeline groups = %d, want 2", pipelines)
	}
	// 2 stages x 3 micro x 2 layers x (fwd AS + bwd GS) = 24 coflows.
	if coflows != 24 {
		t.Errorf("coflow groups = %d, want 24", coflows)
	}
	// Inter-stage flows are sharded across ranks.
	n := w.Graph.Node("hy/it0/act/s0m0r1")
	if n == nil || n.Size != 2 { // actOut 4 / k 2
		t.Errorf("act flow = %+v", n)
	}
	if n.Src != "s0r1" || n.Dst != "s1r1" {
		t.Errorf("act flow endpoints = %s -> %s", n.Src, n.Dst)
	}
}

func TestHybridValidation(t *testing.T) {
	m := Uniform("m", 4, 1, 1, 1, 1)
	cases := []HybridTPPP{
		{Name: "", Model: m, StageWorkers: [][]string{{"a", "b"}, {"c", "d"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", "b"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a"}, {"b"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", "b"}, {"c"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", "b"}, {"a", "d"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", ""}, {"c", "d"}}, MicroBatches: 1, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", "b"}, {"c", "d"}}, MicroBatches: 0, Iterations: 1},
		{Name: "j", Model: m, StageWorkers: [][]string{{"a", "b"}, {"c", "d"}}, MicroBatches: 1, Iterations: 0},
	}
	for i, j := range cases {
		if _, err := j.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHybridRunsUnderSchedulers(t *testing.T) {
	for _, s := range []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
	} {
		w, err := hybridJob(2).Build()
		if err != nil {
			t.Fatal(err)
		}
		res := runWorkload(t, w, 8, s)
		if res.Makespan <= 0 {
			t.Fatalf("%s: zero makespan", s.Name())
		}
		// Compute bound per iteration: 3 micro-batches through 2 stages of
		// 1.0 fwd + 1.0 bwd on the critical path.
		if res.Makespan < 6 {
			t.Errorf("%s: makespan %v below compute bound", s.Name(), res.Makespan)
		}
	}
}

// Pipelining across TP stages: stage 1 computes micro-batch 0 while stage 0
// computes micro-batch 1.
func TestHybridPipelines(t *testing.T) {
	w, err := hybridJob(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, w, 1000, sched.Fair{})
	s0m1 := res.Tasks["hy/it0/fw/s0m1l0r0"]
	s1m0 := res.Tasks["hy/it0/fw/s1m0l2r0"]
	if s1m0.End <= s0m1.Start {
		t.Skip("timing did not overlap on this fabric; structural checks below")
	}
	if s0m1.Start >= s1m0.End {
		t.Errorf("no pipelining: s0m1 %+v vs s1m0 %+v", s0m1, s1m0)
	}
}

// The iteration barrier holds: iteration 1 waits for iteration 0's updates.
func TestHybridIterationBarrier(t *testing.T) {
	w, err := hybridJob(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, w, 1000, sched.Fair{})
	upd := res.Tasks["hy/it0/upd/s0r0"].End
	fw1 := res.Tasks["hy/it1/fw/s0m0l0r0"].Start
	if fw1 < upd-unit.Time(unit.Eps) {
		t.Errorf("it1 forward at %v before it0 update %v", fw1, upd)
	}
	_ = strings.TrimSpace
}
