package ddlt

import (
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

func ws(names ...string) []string { return names }

// runWorkload simulates a workload on uniform hosts of the given capacity.
func runWorkload(t *testing.T, w *Workload, cap unit.Rate, s sched.Scheduler) *sim.Result {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(cap, w.Hosts...)
	simr, err := sim.New(sim.Options{
		Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDPAllReduceBuild(t *testing.T) {
	j := DPAllReduce{
		Name:    "dp",
		Model:   Uniform("m", 4, 8, 2, 1, 1),
		Workers: ws("w0", "w1", "w2", "w3"),
		// default BucketCount: per-layer (4 buckets)
		Iterations: 2,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: 4 fw + 4 buckets × 4 bw computes + 4 all-reduces of
	// 2·3·4 = 24 flows each.
	wantNodes := 2 * (4 + 16 + 4*24)
	if w.Graph.Len() != wantNodes {
		t.Errorf("node count = %d, want %d", w.Graph.Len(), wantNodes)
	}
	// Every group is a Coflow (Table 1: DP-AllReduce is Coflow-compliant).
	for gid, arr := range w.Arrangements {
		if _, ok := arr.(core.Coflow); !ok {
			t.Errorf("group %s arrangement = %s, want coflow", gid, arr.Name())
		}
	}
	if len(w.Arrangements) != 8 {
		t.Errorf("group count = %d, want 8", len(w.Arrangements))
	}
	res := runWorkload(t, w, 4, sched.EchelonMADD{Backfill: true})
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	// Iteration lower bound: 2 × (fwd 4 + bwd 4) compute alone.
	if res.Makespan < 16 {
		t.Errorf("makespan = %v below compute-only bound 16", res.Makespan)
	}
}

func TestDPAllReduceExplicitBuckets(t *testing.T) {
	j := DPAllReduce{
		Name: "dp", Model: Uniform("m", 4, 8, 2, 1, 1),
		Workers: ws("a", "b"), BucketCount: 2, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Arrangements) != 2 {
		t.Errorf("group count = %d, want 2", len(w.Arrangements))
	}
}

func TestDPAllReduceValidation(t *testing.T) {
	m := Uniform("m", 2, 1, 1, 1, 1)
	cases := []DPAllReduce{
		{Name: "", Model: m, Workers: ws("a", "b"), Iterations: 1},
		{Name: "j", Model: Model{}, Workers: ws("a", "b"), Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a"), Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "a"), Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", ""), Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "b"), Iterations: 0},
		{Name: "j", Model: m, Workers: ws("a", "b"), BucketCount: 5, Iterations: 1},
	}
	for i, j := range cases {
		if _, err := j.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDPParameterServerBuild(t *testing.T) {
	j := DPParameterServer{
		Name: "ps", Model: Uniform("m", 2, 6, 1, 1, 1),
		Workers: ws("w0", "w1", "w2"), PS: "ps0",
		BucketCount: 1, AggTime: 0.5, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 3 fw + 3 bw + 3 push + 1 agg + 3 pull = 13 nodes.
	if w.Graph.Len() != 13 {
		t.Errorf("node count = %d, want 13", w.Graph.Len())
	}
	if len(w.Hosts) != 4 {
		t.Errorf("hosts = %v", w.Hosts)
	}
	res := runWorkload(t, w, 6, sched.CoflowMADD{Backfill: true})
	// fw 2 + bw 2 + push 12/6 + agg 0.5 + pull 12/6... push: 3 workers ×
	// 12 bytes into PS ingress 6 => 6s bottleneck. Lower bound sanity:
	if res.Makespan < 2+2+0.5 {
		t.Errorf("makespan = %v suspiciously low", res.Makespan)
	}
	// Pull flows finish simultaneously under Coflow scheduling.
	var finishes []unit.Time
	for id, rec := range res.Flows {
		if strings.Contains(id, "/pull/") {
			finishes = append(finishes, rec.Finish)
		}
	}
	if len(finishes) != 3 {
		t.Fatalf("pull flows = %d", len(finishes))
	}
	for _, f := range finishes[1:] {
		if !f.ApproxEq(finishes[0]) {
			t.Errorf("pull finishes diverge: %v", finishes)
		}
	}
}

func TestDPParameterServerValidation(t *testing.T) {
	m := Uniform("m", 2, 1, 1, 1, 1)
	cases := []DPParameterServer{
		{Name: "j", Model: m, Workers: ws("a", "b"), PS: "", Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "b"), PS: "a", Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "b"), PS: "ps", AggTime: -1, Iterations: 1},
	}
	for i, j := range cases {
		if _, err := j.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPipelineGPipeBuild(t *testing.T) {
	j := PipelineGPipe{
		Name: "pp", Model: Uniform("m", 4, 4, 2, 1, 2),
		Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 4, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 4×4 fw + 4×4 bw + 4 upd computes; 3×4 act + 3×4 grad flows.
	if w.Graph.Len() != 16+16+4+12+12 {
		t.Errorf("node count = %d", w.Graph.Len())
	}
	// Forward groups use the consuming stage's per-micro-batch time.
	arr, ok := w.Arrangements["pp/it0/fwd0"].(core.Pipeline)
	if !ok || arr.T != 1 {
		t.Errorf("fwd0 arrangement = %#v", w.Arrangements["pp/it0/fwd0"])
	}
	barr, ok := w.Arrangements["pp/it0/bwd1"].(core.Pipeline)
	if !ok || barr.T != 2 {
		t.Errorf("bwd1 arrangement = %#v", w.Arrangements["pp/it0/bwd1"])
	}
	// Micro-batch stage indices on activation flows.
	n := w.Graph.Node("pp/it0/act/s0m2")
	if n == nil || n.Stage != 2 || n.Group != "pp/it0/fwd0" {
		t.Errorf("activation node = %+v", n)
	}
	// Gradient flows use reverse-order stages (first-arriving = stage 0).
	gn := w.Graph.Node("pp/it0/grad/s1m3")
	if gn == nil || gn.Stage != 0 {
		t.Errorf("gradient node = %+v", gn)
	}
}

// The pipeline's GPipe schedule on a fast network matches Fig. 1a: with S
// stages and M micro-batches of unit fwd time, the last forward at stage
// S-1 ends at (S-1) + M.
func TestPipelineGPipeTimeline(t *testing.T) {
	j := PipelineGPipe{
		Name: "pp", Model: Uniform("m", 4, 4, 0.001, 1, 1),
		Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 4, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, w, 1000, sched.Fair{}) // effectively infinite network
	near := func(a, b unit.Time) bool { d := a - b; return d < 1e-3 && d > -1e-3 }
	lastFw := res.Tasks["pp/it0/fw/s3m3"]
	if !near(lastFw.End, 7) {
		t.Errorf("last forward ends at %v, want ~7", lastFw.End)
	}
	// Backward on the last stage starts immediately (no idle).
	firstBw := res.Tasks["pp/it0/bw/s3m3"]
	if !near(firstBw.Start, 7) {
		t.Errorf("first backward starts at %v, want ~7", firstBw.Start)
	}
	// Stage 0's first backward must wait for gradients to trickle back:
	// the grey idle area of Fig. 1a. B(0,3) starts after B(3..1, 3) + flows.
	b03 := res.Tasks["pp/it0/bw/s0m3"]
	if b03.Start < 10 {
		t.Errorf("stage-0 backward started at %v, expected pipeline delay >= 10", b03.Start)
	}
	// Total: forwards 7, backwards drain 4 + 3 hops => 14 + update.
	if res.Makespan < 13 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestPipelineValidation(t *testing.T) {
	m := Uniform("m", 4, 1, 1, 1, 1)
	cases := []PipelineGPipe{
		{Name: "j", Model: m, Workers: ws("a", "b"), MicroBatches: 0, Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "b"), MicroBatches: 1, UpdateTime: -1, Iterations: 1},
		{Name: "j", Model: Uniform("m", 1, 1, 1, 1, 1), Workers: ws("a", "b"), MicroBatches: 1, Iterations: 1},
	}
	for i, j := range cases {
		if _, err := j.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTensorParallelBuild(t *testing.T) {
	j := TensorParallel{
		Name: "tp", Model: Uniform("m", 2, 4, 8, 1, 1),
		Workers: ws("w0", "w1"), Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Per layer: 2 fw computes + all-reduce (2 steps × 2 flows); same for
	// backward: 2 layers × (2+4+2+4) = 24 nodes.
	if w.Graph.Len() != 24 {
		t.Errorf("node count = %d, want 24", w.Graph.Len())
	}
	for gid, arr := range w.Arrangements {
		if _, ok := arr.(core.Coflow); !ok {
			t.Errorf("group %s not a coflow", gid)
		}
	}
	res := runWorkload(t, w, 8, sched.EchelonMADD{})
	// Compute-only lower bound: 2 layers × (1+1) serialized with comms.
	if res.Makespan < 4 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestFSDPBuild(t *testing.T) {
	j := FSDP{
		Name: "fsdp", Model: Uniform("m", 3, 6, 1, 1, 2),
		Workers: ws("w0", "w1", "w2"), Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The all-gather EchelonFlow has 2n stages with the Eq. 7 arrangement.
	arr, ok := w.Arrangements["fsdp/it0/ag"].(core.Staged)
	if !ok {
		t.Fatalf("ag arrangement = %#v", w.Arrangements["fsdp/it0/ag"])
	}
	if arr.Stages() != 6 {
		t.Errorf("ag stages = %d, want 2n=6", arr.Stages())
	}
	// 2n all-gathers × (2 steps × 3 flows) + n reduce-scatters × 6 flows
	// + 2n × 3 computes = 36 + 18 + 18.
	if w.Graph.Len() != 72 {
		t.Errorf("node count = %d, want 72", w.Graph.Len())
	}
	// RS groups are Coflows.
	for gid, a := range w.Arrangements {
		if strings.Contains(gid, "/rs") {
			if _, ok := a.(core.Coflow); !ok {
				t.Errorf("group %s not a coflow", gid)
			}
		}
	}
	res := runWorkload(t, w, 6, sched.EchelonMADD{Backfill: true})
	// Compute lower bound: 3×1 fwd + 3×2 bwd = 9.
	if res.Makespan < 9 {
		t.Errorf("makespan = %v below compute bound 9", res.Makespan)
	}
	// The AG EchelonFlow must have flows at every stage 0..5.
	stages := map[int]bool{}
	for _, n := range w.Graph.GroupNodes("fsdp/it0/ag") {
		stages[n.Stage] = true
	}
	for k := 0; k < 6; k++ {
		if !stages[k] {
			t.Errorf("missing AG stage %d", k)
		}
	}
}

func TestFSDPPrefetchGating(t *testing.T) {
	j := FSDP{
		Name: "f", Model: Uniform("m", 4, 4, 1, 1, 1),
		Workers: ws("a", "b"), PrefetchDepth: 1, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// AG(3) (k=3) entry flows must depend on compute unit k-1-depth = 1,
	// i.e. F(1) of the matching worker.
	deps := w.Graph.Deps("f/it0/ag/l3/ag/s0w0")
	var hasGate bool
	for _, d := range deps {
		if d == "f/it0/fw/l1w0" {
			hasGate = true
		}
	}
	if !hasGate {
		t.Errorf("AG(3) entry deps = %v, want prefetch gate on F(1)", deps)
	}
}

func TestFSDPValidation(t *testing.T) {
	j := FSDP{
		Name: "f", Model: Uniform("m", 2, 1, 1, 1, 1),
		Workers: ws("a", "b"), PrefetchDepth: -1, Iterations: 1,
	}
	if _, err := j.Build(); err == nil {
		t.Error("negative prefetch depth accepted")
	}
}

func TestMergeWorkloads(t *testing.T) {
	a, err := DPAllReduce{Name: "jobA", Model: Uniform("m", 2, 4, 1, 1, 1),
		Workers: ws("w0", "w1"), BucketCount: 1, Iterations: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	bWl, err := TensorParallel{Name: "jobB", Model: Uniform("m", 2, 4, 4, 1, 1),
		Workers: ws("w0", "w1"), Iterations: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(a, bWl)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Graph.Len() != a.Graph.Len()+bWl.Graph.Len() {
		t.Errorf("merged size = %d", merged.Graph.Len())
	}
	if len(merged.Hosts) != 2 {
		t.Errorf("merged hosts = %v", merged.Hosts)
	}
	res := runWorkload(t, merged, 4, sched.EchelonMADD{Backfill: true})
	if res.Makespan <= 0 {
		t.Error("merged run failed")
	}
	// Merging the same workload twice must collide on node IDs.
	if _, err := Merge(a, a); err == nil {
		t.Error("duplicate merge accepted")
	}
}

// Table 1 evidence for PP: on a constrained network, EchelonFlow scheduling
// beats treating the pipeline flows as Coflows.
func TestPipelineEchelonBeatsCoflow(t *testing.T) {
	j := PipelineGPipe{
		Name: "pp", Model: Uniform("m", 4, 4, 6, 1, 1),
		Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 4, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(s sched.Scheduler) unit.Time {
		w2, err := PipelineGPipe{
			Name: "pp", Model: Uniform("m", 4, 4, 6, 1, 1),
			Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 4, Iterations: 1,
		}.Build()
		if err != nil {
			t.Fatal(err)
		}
		return runWorkload(t, w2, 4, s).Makespan
	}
	_ = w
	echelon := run(sched.EchelonMADD{Backfill: true})
	coflow := run(sched.CoflowMADD{Backfill: true})
	if echelon > coflow+unit.Time(unit.Eps) {
		t.Errorf("echelon %v should not exceed coflow %v on PP", echelon, coflow)
	}
}
