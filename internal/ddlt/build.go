package ddlt

import (
	"fmt"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/unit"
)

// Workload is a compiled training job (or a merge of several): the
// dependency graph plus the arrangement function of every EchelonFlow group
// appearing on its Comm nodes — exactly what the simulator consumes and what
// the framework would report to the EchelonFlow Agent (§5).
type Workload struct {
	Graph        *dag.Graph
	Arrangements map[string]core.Arrangement
	// Hosts lists every worker the workload computes or communicates on.
	Hosts []string
	// Sinks are the node IDs that complete the workload (iteration
	// barriers of the last iteration); useful when composing jobs.
	Sinks []string
}

// Merge combines several jobs' workloads onto one shared fabric. Node IDs
// must be globally unique (compilers prefix them with the job name).
func Merge(ws ...*Workload) (*Workload, error) {
	out := &Workload{Graph: dag.New(), Arrangements: make(map[string]core.Arrangement)}
	seenHost := make(map[string]bool)
	for _, w := range ws {
		if err := out.Graph.Merge(w.Graph); err != nil {
			return nil, err
		}
		for k, v := range w.Arrangements {
			if _, dup := out.Arrangements[k]; dup {
				return nil, fmt.Errorf("ddlt: duplicate group %q across merged workloads", k)
			}
			out.Arrangements[k] = v
		}
		for _, h := range w.Hosts {
			if !seenHost[h] {
				seenHost[h] = true
				out.Hosts = append(out.Hosts, h)
			}
		}
		out.Sinks = append(out.Sinks, w.Sinks...)
	}
	return out, nil
}

// builder accumulates a workload with per-host sequence counters, so
// compilers emit Compute nodes in intended execution order.
type builder struct {
	w   *Workload
	seq map[string]int
	job string
}

func newBuilder(job string) *builder {
	return &builder{
		w:   &Workload{Graph: dag.New(), Arrangements: make(map[string]core.Arrangement)},
		seq: make(map[string]int),
		job: job,
	}
}

// id prefixes a node name with the job name.
func (b *builder) id(format string, args ...interface{}) string {
	return b.job + "/" + fmt.Sprintf(format, args...)
}

// gid prefixes a group name with the job name.
func (b *builder) gid(format string, args ...interface{}) string {
	return b.job + "/" + fmt.Sprintf(format, args...)
}

// compute emits a Compute node on host with the next sequence number.
func (b *builder) compute(id, host string, dur unit.Time, deps ...string) (string, error) {
	n := &dag.Node{ID: id, Kind: dag.Compute, Host: host, Duration: dur, Seq: b.seq[host]}
	b.seq[host]++
	if err := b.w.Graph.Add(n); err != nil {
		return "", err
	}
	for _, d := range deps {
		if err := b.w.Graph.Depend(d, id); err != nil {
			return "", err
		}
	}
	b.noteHost(host)
	return id, nil
}

// group registers an arrangement for a group name.
func (b *builder) group(name string, arr core.Arrangement) string {
	b.w.Arrangements[name] = arr
	return name
}

func (b *builder) noteHost(h string) {
	for _, x := range b.w.Hosts {
		if x == h {
			return
		}
	}
	b.w.Hosts = append(b.w.Hosts, h)
}

// noteHosts records flow endpoints discovered outside compute().
func (b *builder) noteHosts(hs ...string) {
	for _, h := range hs {
		b.noteHost(h)
	}
}

// finish validates the result and stamps the sinks.
func (b *builder) finish(sinks []string) (*Workload, error) {
	b.w.Sinks = sinks
	if err := b.w.Graph.Validate(); err != nil {
		return nil, err
	}
	for _, g := range b.w.Graph.Groups() {
		if _, ok := b.w.Arrangements[g]; !ok {
			return nil, fmt.Errorf("ddlt: group %q has no arrangement", g)
		}
	}
	return b.w, nil
}

// validateJobCommon checks the fields every paradigm shares.
func validateJobCommon(name string, m Model, workers []string, iterations int) error {
	if name == "" {
		return fmt.Errorf("ddlt: job must have a name")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if len(workers) < 2 {
		return fmt.Errorf("ddlt: job %q needs >=2 workers", name)
	}
	seen := make(map[string]bool)
	for _, w := range workers {
		if w == "" {
			return fmt.Errorf("ddlt: job %q has an empty worker name", name)
		}
		if seen[w] {
			return fmt.Errorf("ddlt: job %q has duplicate worker %q", name, w)
		}
		seen[w] = true
	}
	if iterations < 1 {
		return fmt.Errorf("ddlt: job %q needs >=1 iteration", name)
	}
	return nil
}
