package ddlt

import (
	"testing"

	"echelonflow/internal/sched"
)

func TestZooModelShapes(t *testing.T) {
	tr, err := NewZooModel(ZooTransformer, 6, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Layers) != 8 {
		t.Fatalf("transformer layers = %d, want blocks+2", len(tr.Layers))
	}
	// Embedding dominates parameters but not compute.
	if tr.Layers[0].Params <= tr.Layers[1].Params {
		t.Error("embedding should be parameter-heavy")
	}
	if tr.Layers[0].Fwd >= tr.Layers[1].Fwd {
		t.Error("embedding should be compute-light")
	}

	cnn, err := NewZooModel(ZooConvNet, 5, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	first, last := cnn.Layers[0], cnn.Layers[len(cnn.Layers)-2]
	if first.Activations <= last.Activations {
		t.Error("convnet activations should shrink with depth")
	}
	if first.Params >= last.Params {
		t.Error("convnet parameters should grow with depth")
	}

	mlp, err := NewZooModel(ZooMLP, 4, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(mlp.Layers) != 4 {
		t.Errorf("mlp layers = %d", len(mlp.Layers))
	}
}

func TestZooModelValidation(t *testing.T) {
	if _, err := NewZooModel(ZooMLP, 0, 1, 1); err == nil {
		t.Error("0 blocks accepted")
	}
	if _, err := NewZooModel(ZooMLP, 2, 0, 1); err == nil {
		t.Error("zero block params accepted")
	}
	if _, err := NewZooModel(ZooMLP, 2, 1, 0); err == nil {
		t.Error("zero compute rate accepted")
	}
	if _, err := NewZooModel("mystery", 2, 1, 1); err == nil {
		t.Error("unknown template accepted")
	}
}

// Zoo models must work through every paradigm compiler and simulate.
func TestZooModelsAcrossParadigms(t *testing.T) {
	for _, kind := range []ZooModel{ZooTransformer, ZooConvNet, ZooMLP} {
		m, err := NewZooModel(kind, 6, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		w, err := FSDP{Name: "z-" + string(kind), Model: m,
			Workers: ws("w0", "w1", "w2", "w3"), Iterations: 1}.Build()
		if err != nil {
			t.Fatalf("%s fsdp: %v", kind, err)
		}
		res := runWorkload(t, w, 16, sched.EchelonMADD{Backfill: true})
		if res.Makespan <= 0 {
			t.Errorf("%s: zero makespan", kind)
		}
		p, err := PipelineGPipe{Name: "zp-" + string(kind), Model: m,
			Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 3, Iterations: 1}.Build()
		if err != nil {
			t.Fatalf("%s pp: %v", kind, err)
		}
		pres := runWorkload(t, p, 16, sched.EchelonMADD{Backfill: true})
		if pres.Makespan <= 0 {
			t.Errorf("%s pp: zero makespan", kind)
		}
	}
}
