package ddlt

import (
	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// DPAllReduce is data parallelism with ring all-reduce gradient exchange
// (Fig. 4, AllReduce architecture). Each worker holds a model replica; per
// iteration it runs a forward pass, then backward passes per gradient
// bucket, launching a ring all-reduce as each bucket's gradients become
// ready. The flows of each bucket's all-reduce form a Coflow (§4 Case I):
// training moves to the next iteration only after they all finish.
type DPAllReduce struct {
	Name    string
	Model   Model
	Workers []string
	// BucketCount is the number of gradient buckets; 0 means one bucket
	// per layer (finest-grained overlap of computation and communication).
	BucketCount int
	Iterations  int
}

// Build compiles the job into a workload.
func (j DPAllReduce) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	k := j.BucketCount
	if k == 0 {
		k = len(j.Model.Layers)
	}
	buckets, err := j.Model.Buckets(k)
	if err != nil {
		return nil, err
	}
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)

	var barrier []string // previous iteration's all-reduce exit flows
	for it := 0; it < j.Iterations; it++ {
		// Forward pass per worker.
		fw := make([]string, len(j.Workers))
		for i, w := range j.Workers {
			id, err := b.compute(b.id("it%d/fw%d", it, i), w, j.Model.FwdTime(), barrier...)
			if err != nil {
				return nil, err
			}
			fw[i] = id
		}
		// Backward per bucket (deepest layers first), launching the
		// bucket's all-reduce as soon as each worker's gradients are ready.
		prevBw := fw
		barrier = nil
		for bi, bucket := range buckets {
			dur := bucketBwdTime(j.Model, bucket)
			bw := make([]string, len(j.Workers))
			for i, w := range j.Workers {
				id, err := b.compute(b.id("it%d/bw%dw%d", it, bi, i), w, dur, prevBw[i])
				if err != nil {
					return nil, err
				}
				bw[i] = id
			}
			group := b.group(b.gid("it%d/ar%d", it, bi), core.Coflow{})
			op, err := collective.RingAllReduce(b.w.Graph, b.id("it%d/ar%d", it, bi),
				j.Workers, bucketParams(j.Model, bucket), group, 0, nil)
			if err != nil {
				return nil, err
			}
			// Worker i's first send waits only for worker i's backward.
			for i, entry := range op.Step0 {
				if err := b.w.Graph.Depend(bw[i], entry); err != nil {
					return nil, err
				}
			}
			barrier = append(barrier, op.Last...)
			prevBw = bw
		}
	}
	return b.finish(barrier)
}

// bucketBwdTime sums backward compute over a bucket's layers.
func bucketBwdTime(m Model, bucket []int) (d unit.Time) {
	for _, l := range bucket {
		d += m.Layers[l].Bwd
	}
	return d
}

// bucketParams sums parameter (gradient) volume over a bucket's layers.
func bucketParams(m Model, bucket []int) (v unit.Bytes) {
	for _, l := range bucket {
		v += m.Layers[l].Params
	}
	return v
}
