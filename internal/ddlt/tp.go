package ddlt

import (
	"echelonflow/internal/collective"
	"echelonflow/internal/core"
)

// TensorParallel is Megatron-style tensor parallelism (Fig. 5): every layer
// is sharded across all workers. Each layer's forward computation ends in an
// all-reduce synchronizing activations, and each layer's backward in an
// all-reduce for the corresponding gradients. The all-to-all flows of each
// all-reduce form a Coflow (§4 Case I): "they altogether barrier
// computation in the next layer".
type TensorParallel struct {
	Name       string
	Model      Model
	Workers    []string
	Iterations int
}

// Build compiles the job into a workload.
func (j TensorParallel) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)
	n := len(j.Model.Layers)

	var barrier []string
	for it := 0; it < j.Iterations; it++ {
		// Forward: per-layer compute then activation all-reduce.
		for l := 0; l < n; l++ {
			layer := j.Model.Layers[l]
			fw := make([]string, len(j.Workers))
			for i, w := range j.Workers {
				// barrier holds the previous layer's all-reduce exit flows
				// (or the previous iteration's final all-reduce for l == 0).
				id, err := b.compute(b.id("it%d/fw/l%dw%d", it, l, i), w, layer.Fwd, barrier...)
				if err != nil {
					return nil, err
				}
				fw[i] = id
			}
			group := b.group(b.gid("it%d/as%d", it, l), core.Coflow{})
			op, err := collective.RingAllReduce(b.w.Graph, b.id("it%d/as%d", it, l),
				j.Workers, layer.Activations, group, 0, nil)
			if err != nil {
				return nil, err
			}
			for i, entry := range op.Step0 {
				if err := b.w.Graph.Depend(fw[i], entry); err != nil {
					return nil, err
				}
			}
			barrier = op.Last
		}
		// Backward: layers in reverse, gradient all-reduce per layer.
		for l := n - 1; l >= 0; l-- {
			layer := j.Model.Layers[l]
			bw := make([]string, len(j.Workers))
			for i, w := range j.Workers {
				id, err := b.compute(b.id("it%d/bw/l%dw%d", it, l, i), w, layer.Bwd, barrier...)
				if err != nil {
					return nil, err
				}
				bw[i] = id
			}
			group := b.group(b.gid("it%d/gs%d", it, l), core.Coflow{})
			op, err := collective.RingAllReduce(b.w.Graph, b.id("it%d/gs%d", it, l),
				j.Workers, layer.Activations, group, 0, nil)
			if err != nil {
				return nil, err
			}
			for i, entry := range op.Step0 {
				if err := b.w.Graph.Depend(bw[i], entry); err != nil {
					return nil, err
				}
			}
			barrier = op.Last
		}
	}
	return b.finish(barrier)
}
