// Package ddlt compiles the mainstream distributed deep learning training
// paradigms of the paper's Table 1 — data parallelism with AllReduce and
// parameter-server gradient exchange, GPipe-style pipeline parallelism,
// Megatron-style tensor parallelism, and ZeRO-style fully-sharded data
// parallelism — into computation graphs (package dag) with the EchelonFlow
// group structure and arrangement functions of §4.
//
// A paradigm compiler takes a layered model description and a worker
// placement and emits, per training iteration, the Compute nodes each worker
// runs and the Comm flows the paradigm's communication schedule requires,
// with the dependencies the frameworks impose (gradient bucketing, pipeline
// micro-batch order, layer-wise gather/scatter, iteration barriers).
package ddlt

import (
	"fmt"

	"echelonflow/internal/unit"
)

// Layer describes one model layer's footprint on a single worker.
type Layer struct {
	// Params is the parameter volume (gradients have the same volume).
	Params unit.Bytes
	// Activations is the activation output volume per micro-batch.
	Activations unit.Bytes
	// Fwd and Bwd are the profiled per-micro-batch computation times.
	Fwd, Bwd unit.Time
}

// Validate checks the layer is well formed.
func (l Layer) Validate() error {
	if l.Params < 0 || l.Activations < 0 {
		return fmt.Errorf("ddlt: layer has negative volume")
	}
	if l.Fwd < 0 || l.Bwd < 0 {
		return fmt.Errorf("ddlt: layer has negative compute time")
	}
	return nil
}

// Model is a layered neural network description — the common input of every
// paradigm compiler.
type Model struct {
	Name   string
	Layers []Layer
}

// Validate checks the model is well formed.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("ddlt: model must have a name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("ddlt: model %q has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("ddlt: model %q layer %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// TotalParams sums parameter volume across layers.
func (m Model) TotalParams() unit.Bytes {
	var s unit.Bytes
	for _, l := range m.Layers {
		s += l.Params
	}
	return s
}

// FwdTime sums forward compute time across layers (one micro-batch).
func (m Model) FwdTime() unit.Time {
	var s unit.Time
	for _, l := range m.Layers {
		s += l.Fwd
	}
	return s
}

// BwdTime sums backward compute time across layers (one micro-batch).
func (m Model) BwdTime() unit.Time {
	var s unit.Time
	for _, l := range m.Layers {
		s += l.Bwd
	}
	return s
}

// Uniform builds an n-layer model with identical layers — the shape the
// paper's closed-form arrangements (Eqs. 6 and 7) assume.
func Uniform(name string, layers int, params, activations unit.Bytes, fwd, bwd unit.Time) Model {
	ls := make([]Layer, layers)
	for i := range ls {
		ls[i] = Layer{Params: params, Activations: activations, Fwd: fwd, Bwd: bwd}
	}
	return Model{Name: name, Layers: ls}
}

// Buckets partitions layer indices into k gradient buckets in backward
// order: bucket 0 holds the deepest (last) layers whose gradients are ready
// first (§4 Case I: "training frameworks bucket gradients of several
// layers"). Each bucket is a contiguous run of layer indices, balanced by
// count.
func (m Model) Buckets(k int) ([][]int, error) {
	n := len(m.Layers)
	if k < 1 || k > n {
		return nil, fmt.Errorf("ddlt: model %q: bucket count %d outside [1,%d]", m.Name, k, n)
	}
	out := make([][]int, k)
	// Walk layers from last to first, splitting into k balanced runs.
	idx := n - 1
	for b := 0; b < k; b++ {
		count := n / k
		if b < n%k {
			count++
		}
		for c := 0; c < count; c++ {
			out[b] = append(out[b], idx)
			idx--
		}
	}
	return out, nil
}

// Partition splits layer indices into s contiguous pipeline stages in
// forward order, balanced by count.
func (m Model) Partition(s int) ([][]int, error) {
	n := len(m.Layers)
	if s < 1 || s > n {
		return nil, fmt.Errorf("ddlt: model %q: stage count %d outside [1,%d]", m.Name, s, n)
	}
	out := make([][]int, s)
	idx := 0
	for p := 0; p < s; p++ {
		count := n / s
		if p < n%s {
			count++
		}
		for c := 0; c < count; c++ {
			out[p] = append(out[p], idx)
			idx++
		}
	}
	return out, nil
}
