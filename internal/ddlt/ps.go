package ddlt

import (
	"fmt"

	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// DPParameterServer is data parallelism with a parameter-server gradient
// exchange (Fig. 4b): workers push gradients per bucket to the PS, the PS
// aggregates and updates, and workers pull the fresh weights. The pushes of
// a bucket form one Coflow and the pulls another (§4 Case I: "the
// completion of them all signifies the start of the next training
// iteration").
type DPParameterServer struct {
	Name    string
	Model   Model
	Workers []string
	// PS is the parameter-server host; it must not be a worker.
	PS string
	// BucketCount as in DPAllReduce; 0 means per-layer buckets.
	BucketCount int
	// AggTime is the PS-side aggregation/update compute time per bucket.
	AggTime    unit.Time
	Iterations int
}

// Build compiles the job into a workload.
func (j DPParameterServer) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	if j.PS == "" {
		return nil, fmt.Errorf("ddlt: job %q needs a PS host", j.Name)
	}
	for _, w := range j.Workers {
		if w == j.PS {
			return nil, fmt.Errorf("ddlt: job %q: PS host %q is also a worker", j.Name, j.PS)
		}
	}
	if j.AggTime < 0 {
		return nil, fmt.Errorf("ddlt: job %q has negative AggTime", j.Name)
	}
	k := j.BucketCount
	if k == 0 {
		k = len(j.Model.Layers)
	}
	buckets, err := j.Model.Buckets(k)
	if err != nil {
		return nil, err
	}
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)
	b.noteHost(j.PS)

	var barrier []string // previous iteration's pull flows
	for it := 0; it < j.Iterations; it++ {
		fw := make([]string, len(j.Workers))
		for i, w := range j.Workers {
			id, err := b.compute(b.id("it%d/fw%d", it, i), w, j.Model.FwdTime(), barrier...)
			if err != nil {
				return nil, err
			}
			fw[i] = id
		}
		prevBw := fw
		barrier = nil
		for bi, bucket := range buckets {
			dur := bucketBwdTime(j.Model, bucket)
			vol := bucketParams(j.Model, bucket)
			bw := make([]string, len(j.Workers))
			for i, w := range j.Workers {
				id, err := b.compute(b.id("it%d/bw%dw%d", it, bi, i), w, dur, prevBw[i])
				if err != nil {
					return nil, err
				}
				bw[i] = id
			}
			pushGroup := b.group(b.gid("it%d/push%d", it, bi), core.Coflow{})
			push, err := collective.PSPush(b.w.Graph, b.id("it%d/b%d", it, bi),
				j.Workers, j.PS, vol, pushGroup, 0, nil)
			if err != nil {
				return nil, err
			}
			for i, entry := range push.Step0 {
				if err := b.w.Graph.Depend(bw[i], entry); err != nil {
					return nil, err
				}
			}
			agg, err := b.compute(b.id("it%d/agg%d", it, bi), j.PS, j.AggTime, push.Last...)
			if err != nil {
				return nil, err
			}
			pullGroup := b.group(b.gid("it%d/pull%d", it, bi), core.Coflow{})
			pull, err := collective.PSPull(b.w.Graph, b.id("it%d/b%d", it, bi),
				j.Workers, j.PS, vol, pullGroup, 0, []string{agg})
			if err != nil {
				return nil, err
			}
			barrier = append(barrier, pull.Last...)
			prevBw = bw
		}
	}
	return b.finish(barrier)
}
