package ddlt

import (
	"fmt"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

func TestSchedule1F1BShape(t *testing.T) {
	// Stage 0 of a 4-stage, 6-micro-batch pipeline: 3 warm-up forwards,
	// then 1F1B pairs, then 3 cool-down backwards.
	order := schedule1F1B(0, 4, 6)
	if len(order) != 12 {
		t.Fatalf("entries = %d, want 2M", len(order))
	}
	for i := 0; i < 3; i++ {
		if order[i].kind != unitFwd || order[i].m != i {
			t.Errorf("warmup[%d] = %+v", i, order[i])
		}
	}
	if order[3].kind != unitFwd || order[3].m != 3 || order[4].kind != unitBwd || order[4].m != 0 {
		t.Errorf("steady start = %+v %+v", order[3], order[4])
	}
	last := order[len(order)-1]
	if last.kind != unitBwd || last.m != 5 {
		t.Errorf("final entry = %+v", last)
	}
	// Last stage: pure alternation from the start.
	lastStage := schedule1F1B(3, 4, 6)
	if lastStage[0].kind != unitFwd || lastStage[1].kind != unitBwd || lastStage[1].m != 0 {
		t.Errorf("last stage start = %+v %+v", lastStage[0], lastStage[1])
	}
}

// The memory bound 1F1B exists for: at most S-s micro-batches in flight
// (forwarded but not yet backwarded) at stage s.
func TestSchedule1F1BMemoryBound(t *testing.T) {
	for S := 2; S <= 5; S++ {
		for M := 1; M <= 8; M++ {
			for s := 0; s < S; s++ {
				inFlight, peak := 0, 0
				fwd, bwd := 0, 0
				for _, u := range schedule1F1B(s, S, M) {
					if u.kind == unitFwd {
						inFlight++
						fwd++
					} else {
						inFlight--
						bwd++
					}
					if inFlight > peak {
						peak = inFlight
					}
				}
				if fwd != M || bwd != M || inFlight != 0 {
					t.Fatalf("S=%d M=%d s=%d: fwd=%d bwd=%d leftover=%d", S, M, s, fwd, bwd, inFlight)
				}
				bound := S - s
				if bound > M {
					bound = M
				}
				if peak > bound {
					t.Errorf("S=%d M=%d s=%d: peak in-flight %d > bound %d", S, M, s, peak, bound)
				}
			}
		}
	}
}

func TestPipeline1F1BBuildAndRun(t *testing.T) {
	j := Pipeline1F1B{
		Name: "p1", Model: Uniform("m", 4, 2, 0.01, 1, 1),
		Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 6, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, w, 1000, sched.Fair{})
	// Uncontended 1F1B with uniform f=b=1: last stage alternates without
	// idle after fill; makespan ~= 2M + 2(S-1) = 18.
	if res.Makespan < 17.9 || res.Makespan > 18.5 {
		t.Errorf("makespan = %v, want ~18", res.Makespan)
	}
	// 1F1B keeps stage-3 backward m0 before forward m5 (interleaving).
	b0 := res.Tasks["p1/it0/bw/s3m0"]
	f5 := res.Tasks["p1/it0/fw/s3m5"]
	if b0.Start >= f5.Start {
		t.Errorf("B(s3,m0) at %v should precede F(s3,m5) at %v (1F1B interleave)", b0.Start, f5.Start)
	}
	// GPipe, by contrast, runs all forwards first.
	g, err := PipelineGPipe{
		Name: "gp", Model: Uniform("m", 4, 2, 0.01, 1, 1),
		Workers: ws("s0", "s1", "s2", "s3"), MicroBatches: 6, Iterations: 1,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	gres := runWorkload(t, g, 1000, sched.Fair{})
	gb0 := gres.Tasks["gp/it0/bw/s3m0"]
	gf5 := gres.Tasks["gp/it0/fw/s3m5"]
	if gb0.Start <= gf5.Start {
		t.Errorf("GPipe should finish forwards first: B(m0) %v vs F(m5) %v", gb0.Start, gf5.Start)
	}
}

// 1F1B's backward drain is in micro-batch order, so gradient flows carry
// ascending stages in arrival order.
func TestPipeline1F1BGradientStages(t *testing.T) {
	j := Pipeline1F1B{
		Name: "p1", Model: Uniform("m", 4, 2, 1, 1, 1),
		Workers: ws("a", "b"), MicroBatches: 3, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		n := w.Graph.Node(fmt.Sprintf("p1/it0/grad/s1m%d", m))
		if n == nil || n.Stage != m {
			t.Errorf("grad m%d = %+v", m, n)
		}
	}
}

func TestPipeline1F1BIterationBarrier(t *testing.T) {
	j := Pipeline1F1B{
		Name: "p1", Model: Uniform("m", 2, 2, 0.01, 1, 1),
		Workers: ws("a", "b"), MicroBatches: 2, Iterations: 2,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := runWorkload(t, w, 1000, sched.Fair{})
	upd0End := res.Tasks["p1/it0/upd0"].End
	fw1Start := res.Tasks["p1/it1/fw/s0m0"].Start
	if fw1Start < upd0End-unit.Time(unit.Eps) {
		t.Errorf("it1 forward at %v before it0 update end %v", fw1Start, upd0End)
	}
	// And no micro-batch of it1 leaks early either.
	fw1m1 := res.Tasks["p1/it1/fw/s0m1"].Start
	if fw1m1 < upd0End-unit.Time(unit.Eps) {
		t.Errorf("it1 m1 forward leaked to %v", fw1m1)
	}
}

func TestPipeline1F1BValidation(t *testing.T) {
	m := Uniform("m", 4, 1, 1, 1, 1)
	cases := []Pipeline1F1B{
		{Name: "j", Model: m, Workers: ws("a", "b"), MicroBatches: 0, Iterations: 1},
		{Name: "j", Model: m, Workers: ws("a", "b"), MicroBatches: 1, UpdateTime: -1, Iterations: 1},
		{Name: "", Model: m, Workers: ws("a", "b"), MicroBatches: 1, Iterations: 1},
	}
	for i, j := range cases {
		if _, err := j.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCalibrate(t *testing.T) {
	j := Pipeline1F1B{
		Name: "p1", Model: Uniform("m", 2, 2, 1, 1, 1),
		Workers: ws("a", "b"), MicroBatches: 2, Iterations: 1,
	}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	abs, err := core.NewAbsolute([]unit.Time{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Calibrate(w, "p1/it0/fwd0", abs); err != nil {
		t.Fatal(err)
	}
	if w.Arrangements["p1/it0/fwd0"].Name() != "absolute" {
		t.Error("arrangement not replaced")
	}
	if err := Calibrate(w, "ghost", abs); err == nil {
		t.Error("unknown group accepted")
	}
	if err := Calibrate(w, "p1/it0/fwd0", nil); err == nil {
		t.Error("nil arrangement accepted")
	}
}
