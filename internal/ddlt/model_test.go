package ddlt

import (
	"testing"

	"echelonflow/internal/unit"
)

func TestModelValidate(t *testing.T) {
	ok := Uniform("m", 3, 10, 4, 1, 2)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Model{
		{Name: "", Layers: []Layer{{}}},
		{Name: "m"},
		{Name: "m", Layers: []Layer{{Params: -1}}},
		{Name: "m", Layers: []Layer{{Fwd: -1}}},
		{Name: "m", Layers: []Layer{{Activations: -1}}},
		{Name: "m", Layers: []Layer{{Bwd: -1}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModelAggregates(t *testing.T) {
	m := Model{Name: "m", Layers: []Layer{
		{Params: 10, Fwd: 1, Bwd: 2},
		{Params: 20, Fwd: 3, Bwd: 4},
	}}
	if m.TotalParams() != 30 {
		t.Errorf("TotalParams = %v", m.TotalParams())
	}
	if m.FwdTime() != 4 || m.BwdTime() != 6 {
		t.Errorf("FwdTime/BwdTime = %v/%v", m.FwdTime(), m.BwdTime())
	}
}

func TestUniform(t *testing.T) {
	m := Uniform("u", 4, 8, 2, 1, 1.5)
	if len(m.Layers) != 4 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	for _, l := range m.Layers {
		if l.Params != 8 || l.Activations != 2 || l.Fwd != 1 || l.Bwd != 1.5 {
			t.Errorf("layer = %+v", l)
		}
	}
}

func TestBuckets(t *testing.T) {
	m := Uniform("m", 5, 1, 1, 1, 1)
	buckets, err := m.Buckets(2)
	if err != nil {
		t.Fatal(err)
	}
	// Backward order: bucket 0 holds the deepest layers.
	if len(buckets) != 2 || len(buckets[0]) != 3 || len(buckets[1]) != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	if buckets[0][0] != 4 || buckets[1][len(buckets[1])-1] != 0 {
		t.Errorf("bucket order = %v", buckets)
	}
	// All layers covered exactly once.
	seen := map[int]bool{}
	for _, b := range buckets {
		for _, l := range b {
			if seen[l] {
				t.Errorf("layer %d duplicated", l)
			}
			seen[l] = true
		}
	}
	if len(seen) != 5 {
		t.Errorf("coverage = %v", seen)
	}
	if _, err := m.Buckets(0); err == nil {
		t.Error("0 buckets accepted")
	}
	if _, err := m.Buckets(6); err == nil {
		t.Error("more buckets than layers accepted")
	}
}

func TestPartition(t *testing.T) {
	m := Uniform("m", 7, 1, 1, 1, 1)
	parts, err := m.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 || len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	// Contiguous forward order.
	want := 0
	for _, p := range parts {
		for _, l := range p {
			if l != want {
				t.Fatalf("parts = %v, not contiguous", parts)
			}
			want++
		}
	}
	if _, err := m.Partition(8); err == nil {
		t.Error("more stages than layers accepted")
	}
}

func TestBucketHelpers(t *testing.T) {
	m := Model{Name: "m", Layers: []Layer{
		{Params: 10, Bwd: 1},
		{Params: 20, Bwd: 2},
	}}
	if got := bucketParams(m, []int{0, 1}); got != 30 {
		t.Errorf("bucketParams = %v", got)
	}
	if got := bucketBwdTime(m, []int{1}); got != 2 {
		t.Errorf("bucketBwdTime = %v", got)
	}
}

func TestFSDPGaps(t *testing.T) {
	m := Uniform("m", 3, 1, 1, 0.5, 1.5)
	gaps := fsdpGaps(m)
	// Eq. 7: n-1 forward gaps then n backward gaps.
	want := []unit.Time{0.5, 0.5, 1.5, 1.5, 1.5}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap[%d] = %v, want %v", i, gaps[i], want[i])
		}
	}
}
