package ddlt

import (
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// heterModel builds a deliberately non-uniform model: growing parameter
// sizes, shrinking activations, mixed compute times — the shape of a real
// transformer with embedding/attention/head layers.
func heterModel() Model {
	return Model{Name: "heter", Layers: []Layer{
		{Params: 16, Activations: 8, Fwd: 0.2, Bwd: 0.4},
		{Params: 4, Activations: 6, Fwd: 1.0, Bwd: 2.0},
		{Params: 4, Activations: 6, Fwd: 1.0, Bwd: 2.0},
		{Params: 8, Activations: 2, Fwd: 0.5, Bwd: 0.7},
	}}
}

// Every paradigm must compile and simulate a non-uniform model.
func TestHeterogeneousModelAllParadigms(t *testing.T) {
	m := heterModel()
	workers := ws("w0", "w1", "w2", "w3")
	jobs := map[string]interface{ Build() (*Workload, error) }{
		"dp":   DPAllReduce{Name: "dp", Model: m, Workers: workers, BucketCount: 2, Iterations: 1},
		"ps":   DPParameterServer{Name: "ps", Model: m, Workers: workers, PS: "ps0", BucketCount: 2, AggTime: 0.1, Iterations: 1},
		"pp":   PipelineGPipe{Name: "pp", Model: m, Workers: workers, MicroBatches: 3, Iterations: 1},
		"1f1b": Pipeline1F1B{Name: "1f1b", Model: m, Workers: workers, MicroBatches: 3, Iterations: 1},
		"tp":   TensorParallel{Name: "tp", Model: m, Workers: workers, Iterations: 1},
		"fsdp": FSDP{Name: "fsdp", Model: m, Workers: workers, Iterations: 1},
	}
	for name, j := range jobs {
		t.Run(name, func(t *testing.T) {
			w, err := j.Build()
			if err != nil {
				t.Fatal(err)
			}
			res := runWorkload(t, w, 6, sched.EchelonMADD{Backfill: true})
			if res.Makespan <= 0 {
				t.Fatal("zero makespan")
			}
			// Compute-only lower bound on the slowest single worker.
			if name == "dp" || name == "ps" {
				if res.Makespan < m.FwdTime()+m.BwdTime() {
					t.Errorf("makespan %v below compute bound", res.Makespan)
				}
			}
		})
	}
}

// Non-uniform gradient buckets: volumes and backward times follow the
// actual layers in each bucket, not an average.
func TestHeterogeneousBuckets(t *testing.T) {
	m := heterModel()
	buckets, err := m.Buckets(2)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 0 = layers {3,2} (deepest first): params 8+4, bwd 0.7+2.
	if got := bucketParams(m, buckets[0]); got != 12 {
		t.Errorf("bucket0 params = %v, want 12", got)
	}
	if got := bucketBwdTime(m, buckets[0]); !got.ApproxEq(2.7) {
		t.Errorf("bucket0 bwd = %v, want 2.7", got)
	}
	// Bucket 1 = layers {1,0}: params 4+16, bwd 2+0.4.
	if got := bucketParams(m, buckets[1]); got != 20 {
		t.Errorf("bucket1 params = %v, want 20", got)
	}
}

// The FSDP staged arrangement must reflect per-layer times, not a uniform T.
func TestHeterogeneousFSDPGaps(t *testing.T) {
	m := heterModel()
	gaps := fsdpGaps(m)
	// n=4: fwd gaps for layers 0..2, then bwd gaps for layers 3..0.
	want := []unit.Time{0.2, 1.0, 1.0, 0.7, 2.0, 2.0, 0.4}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if !gaps[i].ApproxEq(want[i]) {
			t.Errorf("gap[%d] = %v, want %v", i, gaps[i], want[i])
		}
	}
}

// Pipeline stages of a non-uniform model carry per-stage times and
// activation sizes in their arrangements and flows.
func TestHeterogeneousPipelineStages(t *testing.T) {
	m := heterModel()
	j := PipelineGPipe{Name: "pp", Model: m, Workers: ws("a", "b"), MicroBatches: 2, Iterations: 1}
	w, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 = layers {0,1}: fwd 1.2; stage 1 = layers {2,3}: fwd 1.5.
	arr := w.Arrangements["pp/it0/fwd0"].(core.Pipeline)
	if !arr.T.ApproxEq(1.5) {
		t.Errorf("fwd0 T = %v, want consumer stage fwd 1.5", arr.T)
	}
	// Activation flow size = stage 0's last layer activations (6).
	var actSize unit.Bytes
	for _, n := range w.Graph.Nodes() {
		if strings.HasPrefix(n.ID, "pp/it0/act/s0m0") {
			actSize = n.Size
		}
	}
	if actSize != 6 {
		t.Errorf("activation size = %v, want 6", actSize)
	}
	// Backward group: consumer is stage 0 with bwd 2.4.
	barr := w.Arrangements["pp/it0/bwd1"].(core.Pipeline)
	if !barr.T.ApproxEq(2.4) {
		t.Errorf("bwd1 T = %v, want 2.4", barr.T)
	}
}
