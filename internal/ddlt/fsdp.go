package ddlt

import (
	"fmt"

	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// FSDP is fully-sharded data parallelism (ZeRO-3, Fig. 3): parameters are
// sharded across workers; before each layer's forward and backward compute
// every worker all-gathers that layer's shard, discarding it afterwards;
// after each layer's backward a reduce-scatter dispatches gradient shards.
//
// Per §4 Case III, the flows of each all-gather form a Coflow, and the
// sequence of all-gather Coflows along the iteration forms one EchelonFlow
// with the Eq. 7 staggered-Coflow arrangement: stage i is the i-th
// all-gather (forward layers 0..n−1, then backward layers n−1..0), with
// deadline gaps equal to the profiled per-layer forward/backward times. The
// reduce-scatter flows of each layer are a separate Coflow, equivalent to
// DP gradient synchronization.
type FSDP struct {
	Name    string
	Model   Model
	Workers []string
	// PrefetchDepth bounds how far the all-gather chain may run ahead of
	// computation (the framework's prefetch limit, constrained by GPU
	// memory). Network op k may start once compute unit k−1−depth has
	// finished. 0 means depth 1.
	PrefetchDepth int
	Iterations    int
}

// fsdpGaps derives the Eq. 7 deadline gaps from the model: forward stages
// are spaced by the preceding layer's forward time, backward stages by the
// corresponding layers' backward times. For a uniform model this is exactly
// Eq. 7 (n−1 gaps of T_fwd followed by n gaps of T_bwd).
func fsdpGaps(m Model) []unit.Time {
	n := len(m.Layers)
	gaps := make([]unit.Time, 0, 2*n-1)
	for i := 1; i <= n-1; i++ {
		gaps = append(gaps, m.Layers[i-1].Fwd)
	}
	for j := 0; j < n; j++ {
		gaps = append(gaps, m.Layers[n-1-j].Bwd)
	}
	return gaps
}

// Build compiles the job into a workload.
func (j FSDP) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	depth := j.PrefetchDepth
	if depth == 0 {
		depth = 1
	}
	if depth < 0 {
		return nil, fmt.Errorf("ddlt: job %q has negative PrefetchDepth", j.Name)
	}
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)
	n := len(j.Model.Layers)

	var barrier []string
	for it := 0; it < j.Iterations; it++ {
		agGroup := b.group(b.gid("it%d/ag", it), core.Staged{Gaps: fsdpGaps(j.Model)})

		// The compute chain per worker: F(0..n−1) then B(n−1..0).
		computeID := func(k, i int) string {
			if k < n {
				return b.id("it%d/fw/l%dw%d", it, k, i)
			}
			return b.id("it%d/bw/l%dw%d", it, 2*n-1-k, i)
		}
		// The network chain: AG(0..n−1) then AG'(n−1..0); op k serves
		// compute unit k. Stage index in the EchelonFlow equals k.
		layerOf := func(k int) int {
			if k < n {
				return k
			}
			return 2*n - 1 - k
		}
		agPrefix := func(k int) string {
			if k < n {
				return b.id("it%d/ag/l%d", it, k)
			}
			return b.id("it%d/agb/l%d", it, layerOf(k))
		}

		var prevLast []string // previous network op's exit flows
		agLast := make([][]string, 2*n)
		agStep0 := make([][]string, 2*n)
		for k := 0; k < 2*n; k++ {
			op, err := collective.RingAllGather(b.w.Graph, agPrefix(k), j.Workers,
				j.Model.Layers[layerOf(k)].Params, agGroup, k, nil)
			if err != nil {
				return nil, err
			}
			// Chain after the previous all-gather. The prefetch gates onto
			// compute nodes are wired below, once those nodes exist.
			deps := prevLast
			if k == 0 {
				deps = barrier
			}
			for _, entry := range op.Step0 {
				for _, d := range deps {
					if err := b.w.Graph.Depend(d, entry); err != nil {
						return nil, err
					}
				}
			}
			prevLast = op.Last
			agLast[k] = op.Last
			agStep0[k] = op.Step0
		}

		// Computes: F(l) after AG(l); B(l) after AG'(l); serial per worker
		// via Seq. Reduce-scatter after each backward layer.
		barrier = nil
		for k := 0; k < 2*n; k++ {
			l := layerOf(k)
			layer := j.Model.Layers[l]
			dur := layer.Fwd
			if k >= n {
				dur = layer.Bwd
			}
			ids := make([]string, len(j.Workers))
			for i, w := range j.Workers {
				id, err := b.compute(computeID(k, i), w, dur, agLast[k]...)
				if err != nil {
					return nil, err
				}
				ids[i] = id
			}
			if k >= n {
				group := b.group(b.gid("it%d/rs%d", it, l), core.Coflow{})
				rs, err := collective.RingReduceScatter(b.w.Graph, b.id("it%d/rs/l%d", it, l),
					j.Workers, layer.Params, group, 0, nil)
				if err != nil {
					return nil, err
				}
				for i, entry := range rs.Step0 {
					if err := b.w.Graph.Depend(ids[i], entry); err != nil {
						return nil, err
					}
				}
				barrier = append(barrier, rs.Last...)
			}
		}

		// Bounded prefetch: the k-th gather may start only once each worker
		// has finished compute unit k−1−depth.
		for k := 0; k < 2*n; k++ {
			gate := k - 1 - depth
			if gate < 0 {
				continue
			}
			for i, entry := range agStep0[k] {
				if err := b.w.Graph.Depend(computeID(gate, i), entry); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.finish(barrier)
}
