package ddlt

import (
	"fmt"

	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// HybridTPPP is Megatron-style 2D parallelism: the model is pipelined
// across stages (GPipe order) and each stage is tensor-parallel across its
// worker group. Communication mixes every arrangement the paper catalogs:
// per-layer intra-stage all-reduces (Coflows, Eq. 5), and per-micro-batch
// rank-to-rank activation/gradient transfers between stages (pipeline
// EchelonFlows, Eq. 6) — a single job that exercises both sides of Table 1.
type HybridTPPP struct {
	Name  string
	Model Model
	// StageWorkers[s] lists pipeline stage s's tensor-parallel group. All
	// groups must have the same size (the TP degree), and stage-to-stage
	// transfers connect equal ranks.
	StageWorkers [][]string
	MicroBatches int
	Iterations   int
}

// Build compiles the job into a workload.
func (j HybridTPPP) Build() (*Workload, error) {
	if j.Name == "" {
		return nil, fmt.Errorf("ddlt: job must have a name")
	}
	if err := j.Model.Validate(); err != nil {
		return nil, err
	}
	S := len(j.StageWorkers)
	if S < 2 {
		return nil, fmt.Errorf("ddlt: job %q needs >=2 pipeline stages", j.Name)
	}
	k := len(j.StageWorkers[0])
	if k < 2 {
		return nil, fmt.Errorf("ddlt: job %q needs TP degree >=2", j.Name)
	}
	seen := map[string]bool{}
	for s, group := range j.StageWorkers {
		if len(group) != k {
			return nil, fmt.Errorf("ddlt: job %q stage %d has %d workers, want %d", j.Name, s, len(group), k)
		}
		for _, w := range group {
			if w == "" {
				return nil, fmt.Errorf("ddlt: job %q has an empty worker name", j.Name)
			}
			if seen[w] {
				return nil, fmt.Errorf("ddlt: job %q reuses worker %q across stages", j.Name, w)
			}
			seen[w] = true
		}
	}
	if j.MicroBatches < 1 {
		return nil, fmt.Errorf("ddlt: job %q needs >=1 micro-batch", j.Name)
	}
	if j.Iterations < 1 {
		return nil, fmt.Errorf("ddlt: job %q needs >=1 iteration", j.Name)
	}
	parts, err := j.Model.Partition(S)
	if err != nil {
		return nil, err
	}

	b := newBuilder(j.Name)
	for _, group := range j.StageWorkers {
		b.noteHosts(group...)
	}
	// Per-stage forward/backward compute time per micro-batch (the TP
	// degree shards each layer, so per-worker time is the layer time).
	stageFwd := make([]unit.Time, S)
	stageBwd := make([]unit.Time, S)
	stageActOut := make([]unit.Bytes, S)
	for s, layers := range parts {
		for _, l := range layers {
			stageFwd[s] += j.Model.Layers[l].Fwd
			stageBwd[s] += j.Model.Layers[l].Bwd
		}
		stageActOut[s] = j.Model.Layers[layers[len(layers)-1]].Activations
	}

	var prevBarrier []string
	for it := 0; it < j.Iterations; it++ {
		// Group declarations: inter-stage EchelonFlows (Eq. 6).
		for s := 0; s+1 < S; s++ {
			b.group(b.gid("it%d/fwd%d", it, s), core.Pipeline{T: stageFwd[s+1]})
			b.group(b.gid("it%d/bwd%d", it, s+1), core.Pipeline{T: stageBwd[s]})
		}

		fwDone := make([][][]string, S) // [s][m] = per-rank last-layer computes
		// Forward: micro-batches in order, stages in order, layers inside.
		for m := 0; m < j.MicroBatches; m++ {
			for s := 0; s < S; s++ {
				group := j.StageWorkers[s]
				if fwDone[s] == nil {
					fwDone[s] = make([][]string, j.MicroBatches)
				}
				// Entry dependency: the previous stage's activation flows
				// (per rank), or the iteration barrier at stage 0.
				entry := make([][]string, k)
				if s > 0 {
					for r := 0; r < k; r++ {
						entry[r] = []string{b.id("it%d/act/s%dm%dr%d", it, s-1, m, r)}
					}
				} else if len(prevBarrier) > 0 {
					for r := 0; r < k; r++ {
						entry[r] = prevBarrier
					}
				}
				var barrier []string // previous layer's all-reduce exits
				for li, l := range parts[s] {
					layer := j.Model.Layers[l]
					ids := make([]string, k)
					for r, w := range group {
						deps := append([]string{}, barrier...)
						if li == 0 {
							deps = append(deps, entry[r]...)
						}
						id, err := b.compute(b.id("it%d/fw/s%dm%dl%dr%d", it, s, m, l, r), w, layer.Fwd, deps...)
						if err != nil {
							return nil, err
						}
						ids[r] = id
					}
					// Intra-stage activation all-reduce (Coflow, Eq. 5).
					agroup := b.group(b.gid("it%d/as/s%dm%dl%d", it, s, m, l), core.Coflow{})
					op, err := collective.RingAllReduce(b.w.Graph,
						b.id("it%d/as/s%dm%dl%d", it, s, m, l), group, layer.Activations, agroup, 0, nil)
					if err != nil {
						return nil, err
					}
					for r, e := range op.Step0 {
						if err := b.w.Graph.Depend(ids[r], e); err != nil {
							return nil, err
						}
					}
					barrier = op.Last
					fwDone[s][m] = ids
				}
				// Inter-stage activation transfer, rank to rank (sharded).
				if s+1 < S {
					for r := 0; r < k; r++ {
						if _, err := collective.P2P(b.w.Graph,
							b.id("it%d/act/s%dm%dr%d", it, s, m, r),
							group[r], j.StageWorkers[s+1][r],
							stageActOut[s]/unit.Bytes(k),
							b.gid("it%d/fwd%d", it, s), m, barrier); err != nil {
							return nil, err
						}
					}
				}
			}
		}

		// Backward: micro-batches in reverse (GPipe drain), stages in
		// reverse, layers in reverse, with per-layer gradient all-reduces.
		bwHead := make([]map[int][]string, S) // [s][m] = first-layer bwd computes
		for s := range bwHead {
			bwHead[s] = make(map[int][]string)
		}
		for mi := 0; mi < j.MicroBatches; mi++ {
			m := j.MicroBatches - 1 - mi
			for s := S - 1; s >= 0; s-- {
				group := j.StageWorkers[s]
				entry := make([][]string, k)
				if s < S-1 {
					for r := 0; r < k; r++ {
						entry[r] = []string{b.id("it%d/grad/s%dm%dr%d", it, s+1, m, r)}
					}
				} else {
					for r := 0; r < k; r++ {
						entry[r] = []string{fwDone[s][m][r]}
					}
				}
				var barrier []string
				for li := len(parts[s]) - 1; li >= 0; li-- {
					l := parts[s][li]
					layer := j.Model.Layers[l]
					ids := make([]string, k)
					for r, w := range group {
						deps := append([]string{}, barrier...)
						if li == len(parts[s])-1 {
							deps = append(deps, entry[r]...)
						}
						id, err := b.compute(b.id("it%d/bw/s%dm%dl%dr%d", it, s, m, l, r), w, layer.Bwd, deps...)
						if err != nil {
							return nil, err
						}
						ids[r] = id
					}
					ggroup := b.group(b.gid("it%d/gs/s%dm%dl%d", it, s, m, l), core.Coflow{})
					op, err := collective.RingAllReduce(b.w.Graph,
						b.id("it%d/gs/s%dm%dl%d", it, s, m, l), group, layer.Activations, ggroup, 0, nil)
					if err != nil {
						return nil, err
					}
					for r, e := range op.Step0 {
						if err := b.w.Graph.Depend(ids[r], e); err != nil {
							return nil, err
						}
					}
					barrier = op.Last
					bwHead[s][m] = ids
				}
				if s > 0 {
					for r := 0; r < k; r++ {
						if _, err := collective.P2P(b.w.Graph,
							b.id("it%d/grad/s%dm%dr%d", it, s, m, r),
							group[r], j.StageWorkers[s-1][r],
							stageActOut[s-1]/unit.Bytes(k),
							b.gid("it%d/bwd%d", it, s), mi, barrier); err != nil {
							return nil, err
						}
					}
				}
			}
		}

		// Iteration barrier: per-stage optimizer steps after the last
		// drained micro-batch (m = 0).
		prevBarrier = prevBarrier[:0]
		for s := 0; s < S; s++ {
			for r, w := range j.StageWorkers[s] {
				id, err := b.compute(b.id("it%d/upd/s%dr%d", it, s, r), w, 0, bwHead[s][0][r])
				if err != nil {
					return nil, err
				}
				prevBarrier = append(prevBarrier, id)
			}
		}
	}
	return b.finish(append([]string(nil), prevBarrier...))
}
