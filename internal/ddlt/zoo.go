package ddlt

import (
	"fmt"

	"echelonflow/internal/unit"
)

// This file provides named model templates with realistic *relative*
// footprints, for scenarios and examples that want more texture than
// Uniform. Absolute scales are parameterized: volumes are bytes and times
// seconds once you pick a scale; the shapes (parameter-to-activation
// ratios, per-layer compute balance) follow the architectures' public
// descriptions.

// ZooModel names a template in the model zoo.
type ZooModel string

// Available templates.
const (
	// ZooTransformer is a GPT-style decoder stack: an embedding layer with
	// a huge parameter footprint but cheap compute, uniform attention/MLP
	// blocks, and a head layer tied to the embedding size.
	ZooTransformer ZooModel = "transformer"
	// ZooConvNet is a ResNet-style CNN: activations dominate early layers,
	// parameters dominate late ones.
	ZooConvNet ZooModel = "convnet"
	// ZooMLP is a plain deep MLP with balanced layers.
	ZooMLP ZooModel = "mlp"
)

// NewZooModel instantiates a template with the given number of hidden
// blocks and a byte scale (the parameter volume of one hidden block);
// compute times scale with each layer's parameter volume at computeRate
// bytes per second of compute.
func NewZooModel(kind ZooModel, blocks int, blockParams unit.Bytes, computeRate unit.Rate) (Model, error) {
	if blocks < 1 {
		return Model{}, fmt.Errorf("ddlt: zoo model needs >=1 block")
	}
	if blockParams <= 0 || computeRate <= 0 {
		return Model{}, fmt.Errorf("ddlt: zoo model needs positive scale parameters")
	}
	t := func(v unit.Bytes) unit.Time { return v.At(computeRate) }
	var layers []Layer
	switch kind {
	case ZooTransformer:
		// Embedding: 4x a block's parameters, negligible compute, large
		// activation output.
		layers = append(layers, Layer{
			Params: 4 * blockParams, Activations: blockParams / 2,
			Fwd: t(blockParams / 8), Bwd: t(blockParams / 8),
		})
		for i := 0; i < blocks; i++ {
			layers = append(layers, Layer{
				Params: blockParams, Activations: blockParams / 2,
				Fwd: t(blockParams), Bwd: t(2 * blockParams),
			})
		}
		// Head: shares the embedding scale.
		layers = append(layers, Layer{
			Params: 4 * blockParams, Activations: blockParams / 8,
			Fwd: t(blockParams / 2), Bwd: t(blockParams),
		})
	case ZooConvNet:
		for i := 0; i < blocks; i++ {
			// Early layers: small kernels, huge activations; later layers
			// grow parameters as spatial dims shrink.
			frac := float64(i+1) / float64(blocks)
			layers = append(layers, Layer{
				Params:      unit.Bytes(float64(blockParams) * (0.25 + 1.5*frac)),
				Activations: unit.Bytes(float64(blockParams) * (2.0 - 1.8*frac)),
				Fwd:         t(blockParams), Bwd: t(2 * blockParams),
			})
		}
		// Classifier head: parameter-heavy, tiny activations.
		layers = append(layers, Layer{
			Params: 2 * blockParams, Activations: blockParams / 16,
			Fwd: t(blockParams / 4), Bwd: t(blockParams / 2),
		})
	case ZooMLP:
		for i := 0; i < blocks; i++ {
			layers = append(layers, Layer{
				Params: blockParams, Activations: blockParams / 4,
				Fwd: t(blockParams), Bwd: t(2 * blockParams),
			})
		}
	default:
		return Model{}, fmt.Errorf("ddlt: unknown zoo model %q", kind)
	}
	m := Model{Name: string(kind), Layers: layers}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}
