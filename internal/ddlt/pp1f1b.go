package ddlt

import (
	"fmt"

	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// Pipeline1F1B is the 1F1B (one-forward-one-backward, PipeDream-flush
// style) pipeline schedule the paper cites as the "later PP
// implementations" that reorder computations to reduce idleness (§2.1,
// [40–42]): each stage runs S−1−s warm-up forwards, then alternates one
// forward with one backward, then drains the remaining backwards.
// Backwards proceed in micro-batch order (unlike GPipe's reverse drain),
// bounding in-flight activations at S−s per stage.
//
// The activation and gradient flows of each worker pair still form
// EchelonFlows, but their ideal finish times are no longer uniformly
// spaced: per §4 Case II, "relations between the data flows can also be
// expressed as an arrangement function, albeit more complicated than
// Eq. 6". Build emits a Pipeline arrangement as the initial guess; the
// intended workflow profiles an uncontended iteration and calibrates the
// groups to the profiled Absolute arrangement:
//
//	w, _ := job.Build()
//	res, _ := (run w on an uncontended fabric)
//	p := profile.FromResult(res)
//	arr, _ := p.DeriveAbsolute(w.Graph, res, "job/it0/fwd0")
//	w.Arrangements["job/it0/fwd0"] = arr  // or ddlt.Calibrate(w, ...)
type Pipeline1F1B struct {
	Name  string
	Model Model
	// Workers lists the stage hosts in pipeline order.
	Workers      []string
	MicroBatches int
	// UpdateTime is the per-stage optimizer step at the iteration barrier.
	UpdateTime unit.Time
	Iterations int
}

// unitKind tags entries of a stage's 1F1B execution order.
type unitKind int

const (
	unitFwd unitKind = iota
	unitBwd
)

// schedule1F1B returns stage s's compute order as (kind, micro-batch)
// pairs: warm-up forwards, steady 1F1B pairs, cool-down backwards.
func schedule1F1B(s, S, M int) []struct {
	kind unitKind
	m    int
} {
	type entry = struct {
		kind unitKind
		m    int
	}
	warmup := S - 1 - s
	if warmup > M {
		warmup = M
	}
	var out []entry
	for m := 0; m < warmup; m++ {
		out = append(out, entry{unitFwd, m})
	}
	for k := 0; warmup+k < M; k++ {
		out = append(out, entry{unitFwd, warmup + k})
		out = append(out, entry{unitBwd, k})
	}
	for m := M - warmup; m < M; m++ {
		out = append(out, entry{unitBwd, m})
	}
	return out
}

// Build compiles the job into a workload.
func (j Pipeline1F1B) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	if j.MicroBatches < 1 {
		return nil, fmt.Errorf("ddlt: job %q needs >=1 micro-batch", j.Name)
	}
	if j.UpdateTime < 0 {
		return nil, fmt.Errorf("ddlt: job %q has negative UpdateTime", j.Name)
	}
	pg := PipelineGPipe{Name: j.Name, Model: j.Model, Workers: j.Workers,
		MicroBatches: j.MicroBatches, UpdateTime: j.UpdateTime, Iterations: j.Iterations}
	infos, err := pg.stages()
	if err != nil {
		return nil, err
	}
	S, M := len(j.Workers), j.MicroBatches
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)

	var prevUpd []string
	for it := 0; it < j.Iterations; it++ {
		fwID := func(s, m int) string { return b.id("it%d/fw/s%dm%d", it, s, m) }
		bwID := func(s, m int) string { return b.id("it%d/bw/s%dm%d", it, s, m) }
		actID := func(s, m int) string { return b.id("it%d/act/s%dm%d", it, s, m) }
		gradID := func(s, m int) string { return b.id("it%d/grad/s%dm%d", it, s, m) }
		for s := 0; s+1 < S; s++ {
			b.group(b.gid("it%d/fwd%d", it, s), core.Pipeline{T: infos[s+1].fwd})
			b.group(b.gid("it%d/bwd%d", it, s+1), core.Pipeline{T: infos[s].bwd})
		}

		// Pass 1: create every compute (in each stage's 1F1B order, so host
		// Seq matches the schedule) and every flow; dependencies are wired
		// in pass 2, since backwards reference gradient flows of later
		// stages. Each stage's computes are also chained explicitly — 1F1B
		// runs a fixed per-stage order, not an opportunistic one.
		type dep struct{ from, to string }
		var deps []dep
		for s := 0; s < S; s++ {
			prevOnHost := ""
			for _, u := range schedule1F1B(s, S, M) {
				var id string
				if u.kind == unitFwd {
					id = fwID(s, u.m)
					if _, err := b.compute(id, j.Workers[s], infos[s].fwd); err != nil {
						return nil, err
					}
					if s > 0 {
						deps = append(deps, dep{actID(s-1, u.m), id})
					}
					if len(prevUpd) > 0 {
						deps = append(deps, dep{prevUpd[s], id})
					}
					if s+1 < S {
						if _, err := collective.P2P(b.w.Graph, actID(s, u.m),
							j.Workers[s], j.Workers[s+1], infos[s].actOut,
							b.gid("it%d/fwd%d", it, s), u.m, []string{id}); err != nil {
							return nil, err
						}
					}
				} else {
					id = bwID(s, u.m)
					if _, err := b.compute(id, j.Workers[s], infos[s].bwd); err != nil {
						return nil, err
					}
					if s < S-1 {
						deps = append(deps, dep{gradID(s+1, u.m), id})
					} else {
						deps = append(deps, dep{fwID(s, u.m), id})
					}
					if s > 0 {
						// 1F1B drains micro-batches in order, so the
						// gradient flow's stage index is its micro-batch.
						if _, err := collective.P2P(b.w.Graph, gradID(s, u.m),
							j.Workers[s], j.Workers[s-1], infos[s].gradIn,
							b.gid("it%d/bwd%d", it, s), u.m, []string{id}); err != nil {
							return nil, err
						}
					}
				}
				if prevOnHost != "" {
					deps = append(deps, dep{prevOnHost, id})
				}
				prevOnHost = id
			}
		}
		for _, d := range deps {
			if err := b.w.Graph.Depend(d.from, d.to); err != nil {
				return nil, err
			}
		}
		prevUpd = prevUpd[:0]
		for s := 0; s < S; s++ {
			id, err := b.compute(b.id("it%d/upd%d", it, s), j.Workers[s], j.UpdateTime, bwID(s, M-1))
			if err != nil {
				return nil, err
			}
			prevUpd = append(prevUpd, id)
		}
	}
	return b.finish(append([]string(nil), prevUpd...))
}

// Calibrate replaces a group's arrangement — typically with an Absolute
// arrangement profiled from an uncontended run (profile.DeriveAbsolute),
// the §3.1 workflow for PP variants whose pattern is not uniform.
func Calibrate(w *Workload, group string, arr core.Arrangement) error {
	if _, ok := w.Arrangements[group]; !ok {
		return fmt.Errorf("ddlt: workload has no group %q", group)
	}
	if arr == nil {
		return fmt.Errorf("ddlt: nil arrangement for group %q", group)
	}
	w.Arrangements[group] = arr
	return nil
}
