package ddlt

import (
	"fmt"

	"echelonflow/internal/collective"
	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// PipelineGPipe is GPipe-style pipeline parallelism (Fig. 1): the model is
// partitioned into contiguous stages, one per worker; each mini-batch splits
// into micro-batches pipelined through the stages. Forward activations flow
// stage s → s+1 and backward gradients s → s−1. The p2p flows from one
// worker to the next across micro-batches form an EchelonFlow with the
// Eq. 6 pipeline arrangement, whose distance T is the consuming stage's
// per-micro-batch computation time.
type PipelineGPipe struct {
	Name  string
	Model Model
	// Workers lists the stage hosts in pipeline order.
	Workers      []string
	MicroBatches int
	// UpdateTime is the per-stage optimizer step at the iteration barrier.
	UpdateTime unit.Time
	Iterations int
}

// stageInfo caches a stage's per-micro-batch times and output activation.
type stageInfo struct {
	fwd, bwd unit.Time
	actOut   unit.Bytes // activation volume leaving this stage
	gradIn   unit.Bytes // gradient volume returning to the previous stage
}

func (j PipelineGPipe) stages() ([]stageInfo, error) {
	parts, err := j.Model.Partition(len(j.Workers))
	if err != nil {
		return nil, err
	}
	infos := make([]stageInfo, len(parts))
	for s, layers := range parts {
		var info stageInfo
		for _, l := range layers {
			info.fwd += j.Model.Layers[l].Fwd
			info.bwd += j.Model.Layers[l].Bwd
		}
		info.actOut = j.Model.Layers[layers[len(layers)-1]].Activations
		// The gradient returned to stage s-1 matches that stage's output
		// activations, i.e. this stage's input.
		if s > 0 {
			prev := parts[s-1]
			info.gradIn = j.Model.Layers[prev[len(prev)-1]].Activations
		}
		infos[s] = info
	}
	return infos, nil
}

// Build compiles the job into a workload.
func (j PipelineGPipe) Build() (*Workload, error) {
	if err := validateJobCommon(j.Name, j.Model, j.Workers, j.Iterations); err != nil {
		return nil, err
	}
	if j.MicroBatches < 1 {
		return nil, fmt.Errorf("ddlt: job %q needs >=1 micro-batch", j.Name)
	}
	if j.UpdateTime < 0 {
		return nil, fmt.Errorf("ddlt: job %q has negative UpdateTime", j.Name)
	}
	infos, err := j.stages()
	if err != nil {
		return nil, err
	}
	S, M := len(j.Workers), j.MicroBatches
	b := newBuilder(j.Name)
	b.noteHosts(j.Workers...)

	// prevUpd[s] is stage s's optimizer update from the previous iteration:
	// every forward of the next iteration on that stage must wait for it.
	var prevUpd []string
	for it := 0; it < j.Iterations; it++ {
		// Forward phase: micro-batches in order, stages in order. The
		// activation flows of each worker pair form one EchelonFlow with
		// distance T = the consuming stage's forward time (Eq. 6).
		fwID := func(s, m int) string { return b.id("it%d/fw/s%dm%d", it, s, m) }
		actID := func(s, m int) string { return b.id("it%d/act/s%dm%d", it, s, m) }
		for s := 0; s+1 < S; s++ {
			b.group(b.gid("it%d/fwd%d", it, s), core.Pipeline{T: infos[s+1].fwd})
		}
		for m := 0; m < M; m++ {
			for s := 0; s < S; s++ {
				var deps []string
				if s > 0 {
					deps = append(deps, actID(s-1, m))
				}
				// Iteration barrier: the stage's parameters are only valid
				// after its previous-iteration optimizer step.
				if len(prevUpd) > 0 {
					deps = append(deps, prevUpd[s])
				}
				if _, err := b.compute(fwID(s, m), j.Workers[s], infos[s].fwd, deps...); err != nil {
					return nil, err
				}
				if s+1 < S {
					if _, err := collective.P2P(b.w.Graph, actID(s, m),
						j.Workers[s], j.Workers[s+1], infos[s].actOut,
						b.gid("it%d/fwd%d", it, s), m, []string{fwID(s, m)}); err != nil {
						return nil, err
					}
				}
			}
		}
		// Backward phase: micro-batches in reverse order (Fig. 1a), stages
		// in reverse. Gradient flows of each worker pair form another
		// EchelonFlow with distance T = the consuming stage's backward time.
		bwID := func(s, m int) string { return b.id("it%d/bw/s%dm%d", it, s, m) }
		gradID := func(s, m int) string { return b.id("it%d/grad/s%dm%d", it, s, m) }
		for s := 1; s < S; s++ {
			b.group(b.gid("it%d/bwd%d", it, s), core.Pipeline{T: infos[s-1].bwd})
		}
		for mi := 0; mi < M; mi++ {
			m := M - 1 - mi
			for s := S - 1; s >= 0; s-- {
				var deps []string
				if s < S-1 {
					deps = append(deps, gradID(s+1, m))
				} else {
					deps = append(deps, fwID(s, m))
				}
				if _, err := b.compute(bwID(s, m), j.Workers[s], infos[s].bwd, deps...); err != nil {
					return nil, err
				}
				if s > 0 {
					if _, err := collective.P2P(b.w.Graph, gradID(s, m),
						j.Workers[s], j.Workers[s-1], infos[s].gradIn,
						b.gid("it%d/bwd%d", it, s), mi, []string{bwID(s, m)}); err != nil {
						return nil, err
					}
				}
			}
		}
		// Iteration barrier: per-stage optimizer updates after the last
		// backward micro-batch (m = 0 under the reversed order).
		prevUpd = prevUpd[:0]
		for s := 0; s < S; s++ {
			id, err := b.compute(b.id("it%d/upd%d", it, s), j.Workers[s], j.UpdateTime, bwID(s, 0))
			if err != nil {
				return nil, err
			}
			prevUpd = append(prevUpd, id)
		}
	}
	return b.finish(append([]string(nil), prevUpd...))
}
