// Package sim co-simulates computation and communication of DDLT workloads
// on a fluid network fabric.
//
// The simulator executes a dependency graph (package dag): Compute nodes
// occupy their worker exclusively for their profiled duration; Comm nodes
// become released flows once their dependencies finish, and transmit at
// whatever rates the configured scheduler assigns. The scheduler is
// re-invoked on every event (flow arrival/departure, computation finish),
// matching the rerun-per-arrival/departure behaviour the paper sketches for
// the Coordinator (§5). This substrate substitutes for the GPU cluster the
// paper envisions; see DESIGN.md.
package sim

import (
	"fmt"
	"sort"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

// Options configures a simulation run.
type Options struct {
	// Graph is the workload: Compute and Comm nodes with dependencies.
	Graph *dag.Graph
	// Net is the fabric the Comm nodes contend on.
	Net fabric.Fabric
	// Scheduler allocates flow rates. Required.
	Scheduler sched.Scheduler
	// Arrangements maps each group name appearing on Comm nodes to its
	// arrangement function. Comm nodes without a group become singleton
	// Coflows (their ideal finish time is their own release).
	Arrangements map[string]core.Arrangement
	// Weights optionally assigns per-group weights for the weighted Eq. 4
	// objective; unlisted groups default to 1.
	Weights map[string]float64
	// Interval, when positive, additionally re-runs the scheduler every
	// Interval seconds while flows are active (the fixed-cadence mode of
	// §5). Zero keeps pure event-driven rescheduling.
	Interval unit.Time
	// IntervalOnly suppresses per-event rescheduling entirely: allocations
	// are recomputed only on interval ticks, and rates are held stale in
	// between — a pure fixed-cadence coordinator. Requires Interval > 0.
	IntervalOnly bool
	// RecordRates captures the full piecewise-constant rate timeline of
	// every flow (used to render Fig. 2-style schedules). Off by default:
	// it grows with event count.
	RecordRates bool
	// MaxEvents bounds the event loop as a runaway guard; 0 means 10^7.
	MaxEvents int
	// CapacityChanges injects fabric dynamics: at each change's time, the
	// named host's capacities are rewritten and the scheduler re-invoked.
	// Changes model failure/degradation (or recovery) of links and
	// background traffic from outside the scheduled tenant set.
	CapacityChanges []CapacityChange
	// Dilations injects compute-time dynamics (stragglers): at each
	// change's time, the named host's straggle factor is set. Compute
	// nodes starting on the host run Factor times slower; a compute
	// already running has its remaining time rescaled at the transition.
	// Factor 1 is a healthy host. Build these (and CapacityChanges) from a
	// typed fault schedule with internal/faults.
	Dilations []DilationChange
	// Events, when non-nil, receives the same flow-lifecycle event stream
	// the live coordinator emits (release/finish/reschedule), stamped with
	// simulated time. Nil costs nothing.
	Events *telemetry.EventLog
}

// CapacityChange is one timed fabric mutation.
type CapacityChange struct {
	At      unit.Time
	Host    string
	Egress  unit.Rate
	Ingress unit.Rate
}

// DilationChange is one timed compute-speed mutation: from At onward, host
// runs computation Factor times slower than profiled (Factor > 1 straggles,
// Factor 1 restores full speed).
type DilationChange struct {
	At     unit.Time
	Host   string
	Factor float64
}

// Span is a half-open execution interval.
type Span struct {
	Start, End unit.Time
}

// Duration returns the span length.
func (s Span) Duration() unit.Time { return s.End - s.Start }

// FlowRecord is the observed lifecycle of one flow.
type FlowRecord struct {
	GroupID  string
	Release  unit.Time // when the flow became transmittable (its start)
	Finish   unit.Time
	Deadline unit.Time // ideal finish under the group's final reference
	Size     unit.Bytes
}

// Tardiness is the flow's Eq. 1 tardiness.
func (f FlowRecord) Tardiness() unit.Time { return f.Finish - f.Deadline }

// RateSegment is one constant-rate span of a flow's transmission.
type RateSegment struct {
	FlowID   string
	From, To unit.Time
	Rate     unit.Rate
}

// GroupResult summarizes one EchelonFlow after the run.
type GroupResult struct {
	Group     *core.EchelonFlow
	Reference unit.Time
	// Tardiness is the group's Eq. 2 tardiness.
	Tardiness unit.Time
	// CompletionTime is the latest flow finish (the Coflow CCT metric).
	CompletionTime unit.Time
}

// Result is the outcome of a run.
type Result struct {
	// Makespan is the finish time of the last node.
	Makespan unit.Time
	// Tasks maps Compute node ID to its execution span.
	Tasks map[string]Span
	// Flows maps Comm node ID to its record.
	Flows map[string]FlowRecord
	// Groups maps group name to its result, including synthetic singleton
	// groups for ungrouped flows.
	Groups map[string]GroupResult
	// SchedulerCalls counts scheduler invocations.
	SchedulerCalls int
	// Rates is the recorded rate timeline (only with Options.RecordRates).
	Rates []RateSegment
}

// TotalTardiness sums weighted group tardiness (Eq. 4: Σ w_i · T_i) over the
// named groups, or all groups when none are named. Groups carry weight 1
// unless Options.Weights says otherwise, so unweighted runs are a plain sum.
// Unknown group names contribute nothing.
func (r *Result) TotalTardiness(groups ...string) unit.Time {
	if len(groups) == 0 {
		for id := range r.Groups {
			groups = append(groups, id)
		}
	}
	var sum unit.Time
	for _, id := range groups {
		gr := r.Groups[id]
		if gr.Group == nil {
			continue
		}
		sum += unit.Time(float64(gr.Tardiness) * gr.Group.EffectiveWeight())
	}
	return sum
}

type nodeStatus int

const (
	waiting nodeStatus = iota
	ready
	running
	done
)

// String names the status for diagnostics.
func (st nodeStatus) String() string {
	switch st {
	case waiting:
		return "waiting"
	case ready:
		return "ready"
	case running:
		return "running"
	case done:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// nodeState is mutable per-node simulation state.
type nodeState struct {
	node      *dag.Node
	status    nodeStatus
	pending   int // unmet dependencies
	start     unit.Time
	finish    unit.Time
	remaining unit.Bytes // comm only
	rate      unit.Rate  // comm only, current allocation
	groupID   string     // comm only
}

// Simulator runs one workload to completion. Create with New; a Simulator
// is single-use.
type Simulator struct {
	opts   Options
	nodes  map[string]*nodeState
	order  []string // deterministic iteration
	groups map[string]*sched.GroupState
	refSet map[string]bool
	result *Result
	now    unit.Time
	// nextTick is the next fixed-cadence reschedule in IntervalOnly mode.
	nextTick unit.Time
	// pendingChanges indexes into opts.CapacityChanges.
	pendingChanges int
	// pendingDilations indexes into opts.Dilations; dilation holds each
	// host's current straggle factor (absent means 1).
	pendingDilations int
	dilation         map[string]float64
	// capChanged marks that a capacity change was applied since the last
	// scheduler run: even IntervalOnly mode must reschedule immediately,
	// since holding the stale rates can oversubscribe a shrunken port.
	capChanged bool
	// cache is the scheduler's plan cache when it exposes one, invalidated
	// eagerly on the events that change scheduling inputs. Nil-safe.
	cache *sched.PlanCache
}

// New validates the workload and prepares a run.
func New(opts Options) (*Simulator, error) {
	if opts.Graph == nil || opts.Net == nil || opts.Scheduler == nil {
		return nil, fmt.Errorf("sim: Graph, Net and Scheduler are required")
	}
	if err := opts.Graph.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 1e7
	}
	if opts.IntervalOnly && opts.Interval <= 0 {
		return nil, fmt.Errorf("sim: IntervalOnly requires a positive Interval")
	}
	for _, cc := range opts.CapacityChanges {
		if opts.Net.Host(cc.Host) == nil {
			return nil, fmt.Errorf("sim: capacity change references unknown host %q", cc.Host)
		}
		if cc.At < 0 || cc.Egress < 0 || cc.Ingress < 0 {
			return nil, fmt.Errorf("sim: invalid capacity change for host %q", cc.Host)
		}
	}
	sort.SliceStable(opts.CapacityChanges, func(i, j int) bool {
		return opts.CapacityChanges[i].At < opts.CapacityChanges[j].At
	})
	for _, d := range opts.Dilations {
		if opts.Net.Host(d.Host) == nil {
			return nil, fmt.Errorf("sim: dilation references unknown host %q", d.Host)
		}
		if d.At < 0 || d.Factor <= 0 {
			return nil, fmt.Errorf("sim: invalid dilation for host %q (at %v, factor %v)", d.Host, d.At, d.Factor)
		}
	}
	sort.SliceStable(opts.Dilations, func(i, j int) bool {
		return opts.Dilations[i].At < opts.Dilations[j].At
	})
	s := &Simulator{
		opts:   opts,
		nodes:  make(map[string]*nodeState),
		groups: make(map[string]*sched.GroupState),
		refSet: make(map[string]bool),
		result: &Result{
			Tasks:  make(map[string]Span),
			Flows:  make(map[string]FlowRecord),
			Groups: make(map[string]GroupResult),
		},
	}
	// Per-group flow lists for building core.EchelonFlow values.
	groupFlows := make(map[string][]*core.Flow)
	var groupOrder []string
	for _, n := range opts.Graph.Nodes() {
		ns := &nodeState{node: n, pending: len(opts.Graph.Deps(n.ID))}
		s.nodes[n.ID] = ns
		s.order = append(s.order, n.ID)
		if n.Kind != dag.Comm {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		ns.groupID = gid
		if _, seen := groupFlows[gid]; !seen {
			groupOrder = append(groupOrder, gid)
		}
		groupFlows[gid] = append(groupFlows[gid], &core.Flow{
			ID: n.ID, Src: n.Src, Dst: n.Dst, Size: n.Size, Stage: n.Stage,
		})
		if opts.Net.Host(n.Src) == nil || opts.Net.Host(n.Dst) == nil {
			return nil, fmt.Errorf("sim: flow %q references host missing from fabric", n.ID)
		}
	}
	for _, h := range hostsOf(opts.Graph) {
		if opts.Net.Host(h) == nil {
			return nil, fmt.Errorf("sim: compute host %q missing from fabric", h)
		}
	}
	for _, gid := range groupOrder {
		flows := groupFlows[gid]
		var arr core.Arrangement
		if a, ok := opts.Arrangements[gid]; ok {
			arr = a
		} else if len(flows) == 1 && gid == "flow:"+flows[0].ID {
			arr = core.Coflow{}
		} else {
			return nil, fmt.Errorf("sim: group %q has no arrangement", gid)
		}
		g, err := core.New(gid, arr, flows...)
		if err != nil {
			return nil, err
		}
		if w, ok := opts.Weights[gid]; ok {
			if w <= 0 {
				return nil, fmt.Errorf("sim: group %q has non-positive weight %v", gid, w)
			}
			g.Weight = w
		}
		s.groups[gid] = &sched.GroupState{Group: g}
	}
	if pc, ok := opts.Scheduler.(interface{ PlanCache() *sched.PlanCache }); ok {
		s.cache = pc.PlanCache()
	}
	return s, nil
}

// hostsOf collects the compute hosts a graph references.
func hostsOf(g *dag.Graph) []string {
	seen := make(map[string]bool)
	var out []string
	for _, n := range g.Nodes() {
		if n.Kind == dag.Compute && !seen[n.Host] {
			seen[n.Host] = true
			out = append(out, n.Host)
		}
	}
	return out
}

// Run executes the workload to completion and returns the result.
func (s *Simulator) Run() (*Result, error) {
	if s.result == nil {
		return nil, fmt.Errorf("sim: Simulator is single-use")
	}
	unfinished := len(s.nodes)
	for ev := 0; unfinished > 0; ev++ {
		if ev >= s.opts.MaxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events (livelock?)", s.opts.MaxEvents)
		}
		s.applyCapacityChanges()
		s.applyDilations()
		finishedNow := s.settle()
		unfinished -= finishedNow
		if unfinished == 0 {
			break
		}

		anyFlows, err := s.maybeReschedule()
		if err != nil {
			return nil, err
		}

		tNext := s.nextEventTime(anyFlows)
		if tNext.IsInf() {
			return nil, s.deadlockError()
		}
		if tNext < s.now {
			tNext = s.now
		}
		s.advanceFlows(tNext)
		s.now = tNext
		unfinished -= s.completeAt()
	}
	res := s.result
	s.result = nil
	res.Makespan = s.now
	s.finalizeGroups(res)
	return res, nil
}

// settle fires all zero-time transitions at the current instant: readiness
// propagation, compute starts, zero-duration compute completions, flow
// releases, and zero-size flow completions. Returns how many nodes finished.
func (s *Simulator) settle() int {
	finished := 0
	for changed := true; changed; {
		changed = false
		// Promote nodes whose dependencies are met.
		for _, id := range s.order {
			ns := s.nodes[id]
			if ns.status == waiting && ns.pending == 0 && s.now >= ns.node.NotBefore-unit.Time(unit.Eps) {
				ns.status = ready
				changed = true
			}
		}
		// Release ready comm nodes.
		for _, id := range s.order {
			ns := s.nodes[id]
			if ns.status != ready || ns.node.Kind != dag.Comm {
				continue
			}
			ns.status = running
			ns.start = s.now
			ns.remaining = ns.node.Size
			if !s.refSet[ns.groupID] {
				s.refSet[ns.groupID] = true
				s.groups[ns.groupID].Reference = s.now
			}
			s.cache.InvalidateGroup(ns.groupID) // flow set grew
			if s.opts.Events != nil {
				s.opts.Events.Append(telemetry.Event{Kind: telemetry.EventRelease,
					At: float64(s.now), Group: ns.groupID, Flow: id})
			}
			changed = true
			if ns.remaining.Zeroish() {
				s.finishFlow(ns)
				finished++
			}
		}
		// Start computes on idle hosts, lowest Seq first.
		busy := make(map[string]bool)
		for _, id := range s.order {
			ns := s.nodes[id]
			if ns.node.Kind == dag.Compute && ns.status == running {
				busy[ns.node.Host] = true
			}
		}
		candidates := make(map[string]*nodeState)
		for _, id := range s.order {
			ns := s.nodes[id]
			if ns.status != ready || ns.node.Kind != dag.Compute || busy[ns.node.Host] {
				continue
			}
			best, ok := candidates[ns.node.Host]
			if !ok || ns.node.Seq < best.node.Seq {
				candidates[ns.node.Host] = ns
			}
		}
		// Deterministic start order.
		hosts := make([]string, 0, len(candidates))
		for h := range candidates {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			ns := candidates[h]
			dur := s.dilatedDuration(ns.node.Duration, h)
			ns.status = running
			ns.start = s.now
			ns.finish = s.now + dur
			changed = true
			if dur <= unit.Time(unit.Eps) {
				s.finishCompute(ns)
				finished++
			}
		}
	}
	return finished
}

// maybeReschedule invokes the scheduler over the currently transmitting
// flows, unless IntervalOnly mode holds the previous rates until the next
// tick. It reports whether any flows are in flight.
func (s *Simulator) maybeReschedule() (bool, error) {
	snap := &sched.Snapshot{Now: s.now, Groups: s.groups}
	for _, id := range s.order {
		ns := s.nodes[id]
		if ns.node.Kind == dag.Comm && ns.status == running {
			snap.Flows = append(snap.Flows, &sched.FlowState{
				Flow:      s.groups[ns.groupID].Group.Flow(id),
				GroupID:   ns.groupID,
				Remaining: ns.remaining,
				Release:   ns.start,
			})
		}
	}
	if len(snap.Flows) == 0 {
		return false, nil
	}
	if s.opts.IntervalOnly && s.now.Before(s.nextTick) && !s.capChanged {
		return true, nil // hold the stale allocation until the tick
	}
	if s.opts.IntervalOnly {
		// Re-arm the cadence from this run, whether it was a tick or a
		// forced capacity-change reschedule.
		s.nextTick = s.now + s.opts.Interval
	}
	s.capChanged = false
	s.result.SchedulerCalls++
	rates, err := s.opts.Scheduler.Schedule(snap, s.opts.Net)
	if err != nil {
		return false, fmt.Errorf("sim: scheduler %s at t=%v: %w", s.opts.Scheduler.Name(), s.now, err)
	}
	if s.opts.Events != nil {
		s.opts.Events.Append(telemetry.Event{Kind: telemetry.EventResched,
			At: float64(s.now), Detail: fmt.Sprintf("%d flows in flight", len(snap.Flows))})
	}
	for _, fs := range snap.Flows {
		s.nodes[fs.Flow.ID].rate = rates[fs.Flow.ID]
	}
	return true, nil
}

// nextEventTime finds the earliest future completion, release gate, or tick.
func (s *Simulator) nextEventTime(anyFlows bool) unit.Time {
	t := unit.Inf
	for _, id := range s.order {
		ns := s.nodes[id]
		switch {
		case ns.node.Kind == dag.Compute && ns.status == running:
			t = unit.MinTime(t, ns.finish)
		case ns.node.Kind == dag.Comm && ns.status == running && ns.rate > unit.Rate(unit.Eps):
			t = unit.MinTime(t, s.now+ns.remaining.At(ns.rate))
		case ns.status == waiting && ns.pending == 0 && ns.node.NotBefore > s.now:
			// Timed release still in the future.
			t = unit.MinTime(t, ns.node.NotBefore)
		}
	}
	if s.opts.Interval > 0 && anyFlows {
		t = unit.MinTime(t, s.now+s.opts.Interval)
	}
	if s.pendingChanges < len(s.opts.CapacityChanges) {
		t = unit.MinTime(t, s.opts.CapacityChanges[s.pendingChanges].At)
	}
	if s.pendingDilations < len(s.opts.Dilations) {
		t = unit.MinTime(t, s.opts.Dilations[s.pendingDilations].At)
	}
	return t
}

// applyCapacityChanges rewrites host capacities whose change time has come.
func (s *Simulator) applyCapacityChanges() {
	for s.pendingChanges < len(s.opts.CapacityChanges) {
		cc := s.opts.CapacityChanges[s.pendingChanges]
		if cc.At > s.now+unit.Time(unit.Eps) {
			return
		}
		// Validated in New; SetCapacity cannot fail here.
		_ = s.opts.Net.SetCapacity(cc.Host, cc.Egress, cc.Ingress)
		s.pendingChanges++
		s.capChanged = true
		s.cache.InvalidateAll()
	}
}

// dilatedDuration scales a compute duration by the host's current straggle
// factor. The guard keeps fault-free runs bit-identical to a build without
// dilation support.
func (s *Simulator) dilatedDuration(d unit.Time, host string) unit.Time {
	if f, ok := s.dilation[host]; ok && f != 1 {
		return unit.Time(float64(d) * f)
	}
	return d
}

// applyDilations applies straggle-factor changes whose time has come. A
// compute already running on the host has its remaining time rescaled by
// new/old, as if the processor clock changed mid-kernel.
func (s *Simulator) applyDilations() {
	for s.pendingDilations < len(s.opts.Dilations) {
		dc := s.opts.Dilations[s.pendingDilations]
		if dc.At > s.now+unit.Time(unit.Eps) {
			return
		}
		if s.dilation == nil {
			s.dilation = make(map[string]float64)
		}
		old := 1.0
		if f, ok := s.dilation[dc.Host]; ok {
			old = f
		}
		s.dilation[dc.Host] = dc.Factor
		s.pendingDilations++
		if dc.Factor == old {
			continue
		}
		for _, id := range s.order {
			ns := s.nodes[id]
			if ns.node.Kind == dag.Compute && ns.status == running && ns.node.Host == dc.Host {
				remaining := ns.finish - s.now
				if remaining > 0 {
					ns.finish = s.now + unit.Time(float64(remaining)*dc.Factor/old)
				}
			}
		}
	}
}

// advanceFlows integrates transmission progress up to tNext and records the
// rate timeline if requested.
func (s *Simulator) advanceFlows(tNext unit.Time) {
	dt := tNext - s.now
	if dt <= 0 {
		return
	}
	for _, id := range s.order {
		ns := s.nodes[id]
		if ns.node.Kind != dag.Comm || ns.status != running {
			continue
		}
		if s.opts.RecordRates && ns.rate > unit.Rate(unit.Eps) {
			s.result.Rates = append(s.result.Rates, RateSegment{
				FlowID: id, From: s.now, To: tNext, Rate: ns.rate,
			})
		}
		ns.remaining -= ns.rate.Over(dt)
		if ns.remaining < 0 {
			ns.remaining = 0
		}
	}
}

// completeAt finishes every node whose completion lands at the current
// instant, returning the count.
func (s *Simulator) completeAt() int {
	finished := 0
	for _, id := range s.order {
		ns := s.nodes[id]
		switch {
		case ns.node.Kind == dag.Compute && ns.status == running && ns.finish <= s.now+unit.Time(unit.Eps):
			s.finishCompute(ns)
			finished++
		case ns.node.Kind == dag.Comm && ns.status == running && s.flowDone(ns):
			s.finishFlow(ns)
			finished++
		}
	}
	return finished
}

// flowDone applies the relative completion tolerance.
func (s *Simulator) flowDone(ns *nodeState) bool {
	tol := unit.Bytes(unit.Eps) * unit.Bytes(1+float64(ns.node.Size))
	return ns.remaining <= tol
}

func (s *Simulator) finishCompute(ns *nodeState) {
	ns.status = done
	s.result.Tasks[ns.node.ID] = Span{Start: ns.start, End: ns.finish}
	s.propagate(ns.node.ID)
}

func (s *Simulator) finishFlow(ns *nodeState) {
	ns.status = done
	ns.remaining = 0
	ns.finish = s.now
	gs := s.groups[ns.groupID]
	deadline := gs.Group.Arrangement.Deadline(ns.node.Stage, gs.Reference)
	tard := ns.finish - deadline
	if tard > gs.AchievedTardiness {
		gs.AchievedTardiness = tard
	}
	s.cache.InvalidateGroup(ns.groupID) // flow set shrank, floor may have moved
	s.result.Flows[ns.node.ID] = FlowRecord{
		GroupID: ns.groupID, Release: ns.start, Finish: ns.finish,
		Deadline: deadline, Size: ns.node.Size,
	}
	if s.opts.Events != nil {
		s.opts.Events.Append(telemetry.Event{Kind: telemetry.EventFinish,
			At: float64(s.now), Group: ns.groupID, Flow: ns.node.ID,
			Tardiness: float64(tard)})
	}
	s.propagate(ns.node.ID)
}

// propagate decrements dependents' pending counts.
func (s *Simulator) propagate(id string) {
	for _, dep := range s.opts.Graph.Dependents(id) {
		s.nodes[dep].pending--
	}
}

// finalizeGroups fills per-group results from flow records.
func (s *Simulator) finalizeGroups(res *Result) {
	for gid, gs := range s.groups {
		gr := GroupResult{Group: gs.Group, Reference: gs.Reference, Tardiness: gs.AchievedTardiness}
		for _, f := range gs.Group.Flows {
			if rec, ok := res.Flows[f.ID]; ok && rec.Finish > gr.CompletionTime {
				gr.CompletionTime = rec.Finish
			}
		}
		res.Groups[gid] = gr
	}
}

// deadlockError explains why no event can fire.
func (s *Simulator) deadlockError() error {
	var stuck []string
	for _, id := range s.order {
		ns := s.nodes[id]
		if ns.status != done {
			stuck = append(stuck, fmt.Sprintf("%s(%v)", id, ns.status))
		}
		if len(stuck) >= 8 {
			break
		}
	}
	return fmt.Errorf("sim: no schedulable event at t=%v; stuck nodes: %v (scheduler starved all flows?)", s.now, stuck)
}
