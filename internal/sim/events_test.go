package sim

import (
	"math"
	"testing"

	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
)

// TestEventSink checks the simulator emits the same lifecycle schema as the
// live coordinator: one release and one finish per flow, reschedules in
// between, with simulated timestamps and tardiness on finishes.
func TestEventSink(t *testing.T) {
	g, net, arrs := fig2Workload(t)
	evl := telemetry.NewEventLog(256)
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.EchelonMADD{}, Arrangements: arrs,
		Events: evl,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	releases := map[string]float64{}
	finishes := map[string]telemetry.Event{}
	resched := 0
	for _, e := range evl.Tail(0) {
		switch e.Kind {
		case telemetry.EventRelease:
			releases[e.Flow] = e.At
		case telemetry.EventFinish:
			finishes[e.Flow] = e
		case telemetry.EventResched:
			resched++
		}
	}
	if len(releases) != 3 || len(finishes) != 3 {
		t.Fatalf("releases = %d, finishes = %d, want 3 each", len(releases), len(finishes))
	}
	if resched != res.SchedulerCalls {
		t.Errorf("reschedule events = %d, scheduler calls = %d", resched, res.SchedulerCalls)
	}
	for id, rec := range res.Flows {
		if got := releases[id]; math.Abs(got-float64(rec.Release)) > 1e-9 {
			t.Errorf("flow %s release event at %v, record %v", id, got, rec.Release)
		}
		fe, ok := finishes[id]
		if !ok {
			t.Fatalf("flow %s has no finish event", id)
		}
		if math.Abs(fe.At-float64(rec.Finish)) > 1e-9 {
			t.Errorf("flow %s finish event at %v, record %v", id, fe.At, rec.Finish)
		}
		if fe.Group != rec.GroupID {
			t.Errorf("flow %s finish event group %q, want %q", id, fe.Group, rec.GroupID)
		}
	}
}
