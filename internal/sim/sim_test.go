package sim

import (
	"math"
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// fig2Workload builds the reconstructed motivating example of the paper's
// Fig. 2 (see DESIGN.md): one pipeline stage pair, three micro-batches of
// activations (1 byte each) released 0.6 apart on a unit link, successor
// computation time T = 7/3 per micro-batch.
func fig2Workload(t *testing.T) (*dag.Graph, *fabric.Network, map[string]core.Arrangement) {
	t.Helper()
	const T = unit.Time(7.0 / 3)
	g := dag.New()
	for i := 0; i < 3; i++ {
		g.MustAdd(&dag.Node{
			ID: "f" + string(rune('1'+i)), Kind: dag.Comm,
			Src: "w1", Dst: "w2", Size: 1,
			Group: "pp", Stage: i,
			NotBefore: unit.Time(0.6 * float64(i)),
		})
		g.MustAdd(&dag.Node{
			ID: "c" + string(rune('1'+i)), Kind: dag.Compute,
			Host: "w2", Duration: T, Seq: i,
		})
		g.MustDepend("f"+string(rune('1'+i)), "c"+string(rune('1'+i)))
		if i > 0 {
			g.MustDepend("c"+string(rune('0'+i)), "c"+string(rune('1'+i)))
		}
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "w1", "w2")
	arrs := map[string]core.Arrangement{"pp": core.Pipeline{T: T}}
	return g, net, arrs
}

func runFig2(t *testing.T, s sched.Scheduler) *Result {
	t.Helper()
	g, net, arrs := fig2Workload(t)
	simr, err := New(Options{Graph: g, Net: net, Scheduler: s, Arrangements: arrs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The headline numbers of the paper's Fig. 2: fair sharing finishes the
// computation phase at 8.5, Coflow scheduling at 10 (worse than fair!), and
// EchelonFlow scheduling at the optimal 8.
func TestFig2FairSharing(t *testing.T) {
	res := runFig2(t, sched.Fair{})
	if !res.Makespan.ApproxEq(8.5) {
		t.Errorf("fair makespan = %v, want 8.5", res.Makespan)
	}
}

func TestFig2CoflowScheduling(t *testing.T) {
	res := runFig2(t, sched.CoflowMADD{})
	if !res.Makespan.ApproxEq(10) {
		t.Errorf("coflow makespan = %v, want 10", res.Makespan)
	}
	// Defining Coflow behaviour: all three flows finish simultaneously.
	f1, f2, f3 := res.Flows["f1"].Finish, res.Flows["f2"].Finish, res.Flows["f3"].Finish
	if !f1.ApproxEq(f2) || !f2.ApproxEq(f3) || !f1.ApproxEq(3) {
		t.Errorf("coflow finishes = %v %v %v, want all 3", f1, f2, f3)
	}
}

func TestFig2EchelonScheduling(t *testing.T) {
	res := runFig2(t, sched.EchelonMADD{})
	if !res.Makespan.ApproxEq(8) {
		t.Errorf("echelon makespan = %v, want 8", res.Makespan)
	}
	// Staggered finishes matching the computation pattern: 1, 10/3, 17/3.
	want := []unit.Time{1, 10.0 / 3, 17.0 / 3}
	for i, id := range []string{"f1", "f2", "f3"} {
		if got := res.Flows[id].Finish; !got.ApproxEq(want[i]) {
			t.Errorf("%s finish = %v, want %v", id, got, want[i])
		}
	}
	// Uniform per-flow tardiness of 1: the echelon formation is maintained.
	for _, id := range []string{"f1", "f2", "f3"} {
		if got := res.Flows[id].Tardiness(); !got.ApproxEq(1) {
			t.Errorf("%s tardiness = %v, want 1", id, got)
		}
	}
	if got := res.Groups["pp"].Tardiness; !got.ApproxEq(1) {
		t.Errorf("group tardiness = %v, want 1", got)
	}
}

func TestFig2OrderingHolds(t *testing.T) {
	fair := runFig2(t, sched.Fair{}).Makespan
	coflow := runFig2(t, sched.CoflowMADD{}).Makespan
	echelon := runFig2(t, sched.EchelonMADD{}).Makespan
	if !(echelon < fair && fair < coflow) {
		t.Errorf("want echelon < fair < coflow, got %v %v %v", echelon, fair, coflow)
	}
}

func TestSimpleChain(t *testing.T) {
	// c1(2) -> f(4 bytes @ cap 2 -> 2s) -> c2(3): makespan 7.
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c1", Kind: dag.Compute, Host: "a", Duration: 2})
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 4})
	g.MustAdd(&dag.Node{ID: "c2", Kind: dag.Compute, Host: "b", Duration: 3})
	g.MustDepend("c1", "f")
	g.MustDepend("f", "c2")
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "a", "b")
	s, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Makespan.ApproxEq(7) {
		t.Errorf("makespan = %v, want 7", res.Makespan)
	}
	if span := res.Tasks["c2"]; !span.Start.ApproxEq(4) || !span.End.ApproxEq(7) {
		t.Errorf("c2 span = %+v", span)
	}
	if rec := res.Flows["f"]; !rec.Release.ApproxEq(2) || !rec.Finish.ApproxEq(4) {
		t.Errorf("flow record = %+v", rec)
	}
	// Singleton flow group exists with its own coflow arrangement.
	gr, ok := res.Groups["flow:f"]
	if !ok {
		t.Fatal("singleton group missing")
	}
	if !gr.Reference.ApproxEq(2) || !gr.Tardiness.ApproxEq(2) {
		t.Errorf("singleton group = %+v (want ref 2, tardiness 2)", gr)
	}
}

func TestHostSerialization(t *testing.T) {
	// Two independent computes on one host run serially, ordered by Seq.
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "late", Kind: dag.Compute, Host: "h", Duration: 1, Seq: 2})
	g.MustAdd(&dag.Node{ID: "early", Kind: dag.Compute, Host: "h", Duration: 1, Seq: 1})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "h", "x")
	s, _ := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tasks["early"].Start.ApproxEq(0) || !res.Tasks["late"].Start.ApproxEq(1) {
		t.Errorf("spans: early=%+v late=%+v", res.Tasks["early"], res.Tasks["late"])
	}
	if !res.Makespan.ApproxEq(2) {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestZeroDurationAndZeroSize(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c0", Kind: dag.Compute, Host: "a", Duration: 0})
	g.MustAdd(&dag.Node{ID: "f0", Kind: dag.Comm, Src: "a", Dst: "b", Size: 0})
	g.MustAdd(&dag.Node{ID: "c1", Kind: dag.Compute, Host: "b", Duration: 1})
	g.MustDepend("c0", "f0")
	g.MustDepend("f0", "c1")
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, _ := New(Options{Graph: g, Net: net, Scheduler: sched.EchelonMADD{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Makespan.ApproxEq(1) {
		t.Errorf("makespan = %v, want 1", res.Makespan)
	}
}

func TestNotBeforeGate(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 1, NotBefore: 5})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, _ := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tasks["c"].Start.ApproxEq(5) || !res.Makespan.ApproxEq(6) {
		t.Errorf("span = %+v, makespan = %v", res.Tasks["c"], res.Makespan)
	}
}

func TestNewValidation(t *testing.T) {
	g := dag.New()
	net := fabric.NewNetwork()
	if _, err := New(Options{Graph: nil, Net: net, Scheduler: sched.Fair{}}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Options{Graph: g, Net: net, Scheduler: nil}); err == nil {
		t.Error("nil scheduler accepted")
	}
	// Unknown host in flow.
	g2 := dag.New()
	g2.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "ghost", Size: 1})
	net2 := fabric.NewNetwork()
	net2.AddUniformHosts(1, "a", "b")
	if _, err := New(Options{Graph: g2, Net: net2, Scheduler: sched.Fair{}}); err == nil {
		t.Error("unknown flow host accepted")
	}
	// Unknown compute host.
	g3 := dag.New()
	g3.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "ghost", Duration: 1})
	if _, err := New(Options{Graph: g3, Net: net2, Scheduler: sched.Fair{}}); err == nil {
		t.Error("unknown compute host accepted")
	}
	// Grouped flows without an arrangement.
	g4 := dag.New()
	g4.MustAdd(&dag.Node{ID: "f1", Kind: dag.Comm, Src: "a", Dst: "b", Size: 1, Group: "grp"})
	g4.MustAdd(&dag.Node{ID: "f2", Kind: dag.Comm, Src: "a", Dst: "b", Size: 1, Group: "grp"})
	if _, err := New(Options{Graph: g4, Net: net2, Scheduler: sched.Fair{}}); err == nil {
		t.Error("group without arrangement accepted")
	}
}

func TestSimulatorSingleUse(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 1})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, _ := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestRecordRates(t *testing.T) {
	res := func() *Result {
		g, net, arrs := fig2Workload(t)
		s, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}, Arrangements: arrs, RecordRates: true})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if len(res.Rates) == 0 {
		t.Fatal("no rate segments recorded")
	}
	// Integrated volume per flow must equal its size.
	vol := map[string]float64{}
	for _, seg := range res.Rates {
		vol[seg.FlowID] += float64(seg.Rate.Over(seg.To - seg.From))
	}
	for _, id := range []string{"f1", "f2", "f3"} {
		if math.Abs(vol[id]-1) > 1e-6 {
			t.Errorf("integrated volume of %s = %v, want 1", id, vol[id])
		}
	}
}

func TestIntervalRescheduling(t *testing.T) {
	g, net, arrs := fig2Workload(t)
	s, err := New(Options{Graph: g, Net: net, Scheduler: sched.EchelonMADD{}, Arrangements: arrs, Interval: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Makespan.ApproxEq(8) {
		t.Errorf("interval-mode makespan = %v, want 8", res.Makespan)
	}
	evOnly := runFig2(t, sched.EchelonMADD{})
	if res.SchedulerCalls <= evOnly.SchedulerCalls {
		t.Errorf("interval mode should call the scheduler more often (%d vs %d)",
			res.SchedulerCalls, evOnly.SchedulerCalls)
	}
}

func TestDeterminism(t *testing.T) {
	first := runFig2(t, sched.EchelonMADD{Backfill: true})
	for i := 0; i < 3; i++ {
		again := runFig2(t, sched.EchelonMADD{Backfill: true})
		if !first.Makespan.ApproxEq(again.Makespan) {
			t.Fatalf("nondeterministic makespan: %v vs %v", first.Makespan, again.Makespan)
		}
		for id, rec := range first.Flows {
			if !again.Flows[id].Finish.ApproxEq(rec.Finish) {
				t.Fatalf("nondeterministic finish for %s", id)
			}
		}
	}
}

func TestTotalTardiness(t *testing.T) {
	res := runFig2(t, sched.EchelonMADD{})
	if got := res.TotalTardiness("pp"); !got.ApproxEq(1) {
		t.Errorf("TotalTardiness(pp) = %v", got)
	}
	if got := res.TotalTardiness(); !got.ApproxEq(1) {
		t.Errorf("TotalTardiness() = %v", got)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	g, net, arrs := fig2Workload(t)
	s, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}, Arrangements: arrs, MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "events") {
		t.Errorf("expected event-guard error, got %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if waiting.String() != "waiting" || done.String() != "done" {
		t.Error("status strings wrong")
	}
	if nodeStatus(9).String() != "status(9)" {
		t.Error("unknown status string wrong")
	}
}

// Group weights flow into the scheduler: under the weighted policy, the
// heavier of two otherwise-identical competing groups is served first.
func TestGroupWeights(t *testing.T) {
	build := func() *dag.Graph {
		g := dag.New()
		for _, job := range []string{"a-light", "z-heavy"} {
			src := "src0"
			if job == "z-heavy" {
				src = "src1"
			}
			for i := 0; i < 2; i++ {
				g.MustAdd(&dag.Node{
					ID: job + "-f" + string(rune('0'+i)), Kind: dag.Comm,
					Src: src, Dst: "dst", Size: 2, Group: job, Stage: i,
				})
			}
		}
		return g
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "src0", "src1", "dst")
	arrs := map[string]core.Arrangement{
		"a-light": core.Pipeline{T: 1}, "z-heavy": core.Pipeline{T: 1},
	}
	run := func(weights map[string]float64) *Result {
		s, err := New(Options{
			Graph: build(), Net: net, Scheduler: sched.EchelonMADD{Backfill: true, Weighted: true},
			Arrangements: arrs, Weights: weights,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unweighted := run(nil)
	weighted := run(map[string]float64{"z-heavy": 4})
	// Without weights the lexicographic tie-break favours a-light; with
	// weight 4 the heavy group completes first.
	if unweighted.Groups["a-light"].CompletionTime >= unweighted.Groups["z-heavy"].CompletionTime {
		t.Errorf("unweighted: light %v should finish before heavy %v",
			unweighted.Groups["a-light"].CompletionTime, unweighted.Groups["z-heavy"].CompletionTime)
	}
	if weighted.Groups["z-heavy"].CompletionTime >= weighted.Groups["a-light"].CompletionTime {
		t.Errorf("weighted: heavy %v should finish before light %v",
			weighted.Groups["z-heavy"].CompletionTime, weighted.Groups["a-light"].CompletionTime)
	}
}

func TestGroupWeightsValidation(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 1, Group: "g"})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	_, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Arrangements: map[string]core.Arrangement{"g": core.Coflow{}},
		Weights:      map[string]float64{"g": -1},
	})
	if err == nil {
		t.Error("negative weight accepted")
	}
}

// Capacity changes rewire the fabric mid-run and the scheduler adapts: a
// link that halves mid-transfer doubles the remaining transfer time.
func TestCapacityChange(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 8})
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "a", "b")
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		CapacityChanges: []CapacityChange{{At: 2, Host: "a", Egress: 1, Ingress: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// [0,2] at rate 2 ships 4; remaining 4 at rate 1 -> finish at 6.
	if !res.Flows["f"].Finish.ApproxEq(6) {
		t.Errorf("finish = %v, want 6", res.Flows["f"].Finish)
	}
}

// A capacity recovery speeds the flow back up.
func TestCapacityRecovery(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 8})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		CapacityChanges: []CapacityChange{{At: 4, Host: "b", Egress: 4, Ingress: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// [0,4] at rate 1 ships 4; remaining 4: b ingress now 4 but a egress
	// still 1 -> rate stays 1? No: a's egress unchanged (1), so finish 8.
	if !res.Flows["f"].Finish.ApproxEq(8) {
		t.Errorf("finish = %v, want 8 (src egress still limits)", res.Flows["f"].Finish)
	}
}

func TestCapacityChangeValidation(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 1})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	if _, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{},
		CapacityChanges: []CapacityChange{{At: 1, Host: "ghost", Egress: 1, Ingress: 1}}}); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{},
		CapacityChanges: []CapacityChange{{At: -1, Host: "a", Egress: 1, Ingress: 1}}}); err == nil {
		t.Error("negative time accepted")
	}
}

// Eq. 4 is a *weighted* sum: doubling a group's weight doubles its
// contribution to the objective.
func TestWeightedTotalTardiness(t *testing.T) {
	g, net, arrs := fig2Workload(t)
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.EchelonMADD{}, Arrangements: arrs,
		Weights: map[string]float64{"pp": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The unweighted run achieves tardiness 1 (TestTotalTardiness); the
	// weighted objective counts it twice.
	if got := res.Groups["pp"].Tardiness; !got.ApproxEq(1) {
		t.Fatalf("tardiness = %v, want 1", got)
	}
	if got := res.TotalTardiness("pp"); !got.ApproxEq(2) {
		t.Errorf("TotalTardiness(pp) = %v, want 2 (weight applied)", got)
	}
	if got := res.TotalTardiness(); !got.ApproxEq(2) {
		t.Errorf("TotalTardiness() = %v, want 2 (weight applied)", got)
	}
	if got := res.TotalTardiness("no-such-group"); got != 0 {
		t.Errorf("TotalTardiness(no-such-group) = %v, want 0", got)
	}
}

// MaxEvents is an exact bound: a budget of 1 permits a single event-loop
// iteration, so a run needing more trips the guard (the seed's off-by-one
// allowed MaxEvents+1 iterations).
func TestMaxEventsExact(t *testing.T) {
	g, net, arrs := fig2Workload(t)
	s, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{}, Arrangements: arrs, MaxEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "exceeded 1 events") {
		t.Errorf("expected MaxEvents=1 guard error, got %v", err)
	}
	// A workload that completes within the budget is unaffected.
	d := dag.New()
	d.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "w1", Duration: 1})
	s2, err := New(Options{Graph: d, Net: net, Scheduler: sched.Fair{}, MaxEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(); err != nil {
		t.Errorf("single-event run tripped the guard: %v", err)
	}
}

// In IntervalOnly mode a capacity decrease must force an immediate
// reschedule: holding the stale rates until the next tick would
// oversubscribe the shrunken port (and let the fluid model transmit faster
// than the fabric allows).
func TestIntervalOnlyCapacityChangeReschedules(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 8})
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "a", "b")
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Interval: 10, IntervalOnly: true, RecordRates: true,
		CapacityChanges: []CapacityChange{{At: 2, Host: "a", Egress: 1, Ingress: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// [0,2] at rate 2 ships 4; the change to capacity 1 must take effect at
	// t=2 (not at the t=10 tick), so the remaining 4 finish at 6.
	if !res.Flows["f"].Finish.ApproxEq(6) {
		t.Errorf("finish = %v, want 6 (reschedule at the capacity change)", res.Flows["f"].Finish)
	}
	// No recorded rate may oversubscribe the port after the change.
	for _, seg := range res.Rates {
		if seg.From >= 2-unit.Time(unit.Eps) && float64(seg.Rate) > 1+unit.Eps {
			t.Errorf("segment [%v,%v) rate %v oversubscribes capacity 1", seg.From, seg.To, seg.Rate)
		}
	}
}

// A straggle factor applied mid-compute rescales the remaining time: a
// duration-6 compute that slows 2x at t=2 finishes at 2 + 4*2 = 10, and a
// successor starting while straggling runs at the dilated speed until the
// factor is restored.
func TestComputeDilation(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c1", Kind: dag.Compute, Host: "a", Duration: 6})
	g.MustAdd(&dag.Node{ID: "c2", Kind: dag.Compute, Host: "a", Duration: 3})
	g.MustDepend("c1", "c2")
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Dilations: []DilationChange{
			{At: 2, Host: "a", Factor: 2},
			{At: 11, Host: "a", Factor: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tasks["c1"].End.ApproxEq(10) {
		t.Errorf("c1 end = %v, want 10 (4 units left at 2x dilation)", res.Tasks["c1"].End)
	}
	// c2 starts at 10 under factor 2 (6 dilated units); at t=11 the factor
	// restores, shrinking the remaining 5 dilated units back to 2.5.
	if !res.Tasks["c2"].End.ApproxEq(13.5) {
		t.Errorf("c2 end = %v, want 13.5 (recovery mid-compute)", res.Tasks["c2"].End)
	}
}

// A dilation on an idle host only affects computes that start under it.
func TestComputeDilationBeforeStart(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 4, NotBefore: 5})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, err := New(Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Dilations: []DilationChange{{At: 1, Host: "a", Factor: 1.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tasks["c"].End.ApproxEq(11) {
		t.Errorf("end = %v, want 11 (start 5 + 4*1.5)", res.Tasks["c"].End)
	}
}

func TestDilationValidation(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 1})
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	for _, bad := range []DilationChange{
		{At: 1, Host: "ghost", Factor: 2},
		{At: -1, Host: "a", Factor: 2},
		{At: 1, Host: "a", Factor: 0},
		{At: 1, Host: "a", Factor: -3},
	} {
		if _, err := New(Options{Graph: g, Net: net, Scheduler: sched.Fair{},
			Dilations: []DilationChange{bad}}); err == nil {
			t.Errorf("invalid dilation %+v accepted", bad)
		}
	}
}
