package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// randomWorkload builds a random layered DAG of computes and grouped flows
// on a random fabric. Layered construction (edges only point to later
// layers) guarantees acyclicity.
func randomWorkload(rng *rand.Rand) (*dag.Graph, *fabric.Network, map[string]core.Arrangement) {
	hosts := make([]string, 2+rng.Intn(3))
	net := fabric.NewNetwork()
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%d", i)
		_ = net.AddHost(hosts[i], unit.Rate(1+3*rng.Float64()), unit.Rate(1+3*rng.Float64()))
	}
	g := dag.New()
	layers := 2 + rng.Intn(3)
	var prev []string
	groupCount := 1 + rng.Intn(2)
	arrs := map[string]core.Arrangement{}
	stagePer := map[string]int{}
	for gi := 0; gi < groupCount; gi++ {
		name := fmt.Sprintf("grp%d", gi)
		if rng.Intn(2) == 0 {
			arrs[name] = core.Coflow{}
		} else {
			arrs[name] = core.Pipeline{T: unit.Time(rng.Float64())}
		}
	}
	seq := 0
	for l := 0; l < layers; l++ {
		var cur []string
		// Computes.
		for c := 0; c < 1+rng.Intn(3); c++ {
			id := fmt.Sprintf("c%d-%d", l, c)
			g.MustAdd(&dag.Node{
				ID: id, Kind: dag.Compute,
				Host: hosts[rng.Intn(len(hosts))], Duration: unit.Time(rng.Float64() * 2), Seq: seq,
			})
			seq++
			cur = append(cur, id)
		}
		// Flows.
		for f := 0; f < rng.Intn(3); f++ {
			id := fmt.Sprintf("f%d-%d", l, f)
			src := rng.Intn(len(hosts))
			dst := (src + 1 + rng.Intn(len(hosts)-1)) % len(hosts)
			group := ""
			stage := 0
			if rng.Intn(2) == 0 {
				group = fmt.Sprintf("grp%d", rng.Intn(groupCount))
				stage = stagePer[group]
				stagePer[group]++
			}
			g.MustAdd(&dag.Node{
				ID: id, Kind: dag.Comm,
				Src: hosts[src], Dst: hosts[dst],
				Size: unit.Bytes(rng.Float64() * 4), Group: group, Stage: stage,
			})
			cur = append(cur, id)
		}
		// Edges from the previous layer.
		for _, to := range cur {
			for _, from := range prev {
				if rng.Float64() < 0.4 {
					g.MustDepend(from, to)
				}
			}
		}
		prev = cur
	}
	return g, net, arrs
}

// simProperty runs a random workload under a scheduler and checks the
// simulator's fundamental invariants.
func simProperty(t *testing.T, s sched.Scheduler) func(int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, net, arrs := randomWorkload(rng)
		simr, err := New(Options{Graph: g, Net: net, Scheduler: s, Arrangements: arrs, RecordRates: true})
		if err != nil {
			t.Logf("seed %d: New: %v", seed, err)
			return false
		}
		res, err := simr.Run()
		if err != nil {
			t.Logf("seed %d: Run: %v", seed, err)
			return false
		}
		// 1. Everything completed.
		nodes := g.Nodes()
		for _, n := range nodes {
			if n.Kind == dag.Compute {
				if _, ok := res.Tasks[n.ID]; !ok {
					t.Logf("seed %d: compute %s missing", seed, n.ID)
					return false
				}
			} else if _, ok := res.Flows[n.ID]; !ok {
				t.Logf("seed %d: flow %s missing", seed, n.ID)
				return false
			}
		}
		// 2. Volume conservation: integrated rate equals flow size.
		vol := map[string]float64{}
		for _, seg := range res.Rates {
			vol[seg.FlowID] += float64(seg.Rate.Over(seg.To - seg.From))
		}
		for _, n := range nodes {
			if n.Kind != dag.Comm {
				continue
			}
			if math.Abs(vol[n.ID]-float64(n.Size)) > 1e-6*(1+float64(n.Size)) {
				t.Logf("seed %d: flow %s shipped %v of %v", seed, n.ID, vol[n.ID], n.Size)
				return false
			}
			rec := res.Flows[n.ID]
			if rec.Finish < rec.Release-unit.Time(unit.Eps) {
				t.Logf("seed %d: flow %s finished before release", seed, n.ID)
				return false
			}
		}
		// 3. Host exclusivity: compute spans on one host never overlap.
		byHost := map[string][]Span{}
		for id, span := range res.Tasks {
			byHost[g.Node(id).Host] = append(byHost[g.Node(id).Host], span)
		}
		for host, spans := range byHost {
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					a, b := spans[i], spans[j]
					if a.Start < b.End-unit.Time(unit.Eps) && b.Start < a.End-unit.Time(unit.Eps) {
						t.Logf("seed %d: overlapping computes on %s: %+v %+v", seed, host, a, b)
						return false
					}
				}
			}
		}
		// 4. Dependencies respected: every node starts after its deps end.
		endOf := func(id string) unit.Time {
			if span, ok := res.Tasks[id]; ok {
				return span.End
			}
			return res.Flows[id].Finish
		}
		startOf := func(id string) unit.Time {
			if span, ok := res.Tasks[id]; ok {
				return span.Start
			}
			return res.Flows[id].Release
		}
		for _, n := range nodes {
			for _, dep := range g.Deps(n.ID) {
				if startOf(n.ID) < endOf(dep)-unit.Time(1e-6) {
					t.Logf("seed %d: %s started %v before dep %s ended %v",
						seed, n.ID, startOf(n.ID), dep, endOf(dep))
					return false
				}
			}
		}
		// 5. Group tardiness equals the max per-flow tardiness.
		for gid, gr := range res.Groups {
			var max unit.Time
			seen := false
			for _, f := range gr.Group.Flows {
				rec, ok := res.Flows[f.ID]
				if !ok {
					continue
				}
				seen = true
				if tt := rec.Tardiness(); tt > max {
					max = tt
				}
			}
			if seen && !gr.Tardiness.ApproxEq(max) {
				t.Logf("seed %d: group %s tardiness %v != max %v", seed, gid, gr.Tardiness, max)
				return false
			}
		}
		return true
	}
}

func TestSimInvariantsUnderEchelonMADD(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.EchelonMADD{Backfill: true}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderCoflowMADD(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.CoflowMADD{Backfill: true}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderFair(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.Fair{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderSRPT(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.SRPT{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderEDF(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.EDF{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
