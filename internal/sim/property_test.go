package sim_test

import (
	"testing"
	"testing/quick"

	"echelonflow/internal/check"
	"echelonflow/internal/sched"
)

// simProperty runs a generated scenario under a scheduler and checks the
// simulator's invariants through the check oracle library: capacity
// feasibility, volume conservation, ordering (releases, deps, host
// exclusivity), tardiness accounting, and work conservation. Scenario
// generation lives in internal/check so the property tests, the
// echelon-check CLI, and the shrinker all draw from the same corpus.
func simProperty(t *testing.T, s sched.Scheduler) func(uint64) bool {
	cfg := check.Config{
		Oracles:   check.ResultOracles(),
		Scheduler: func() sched.Scheduler { return s },
	}
	return func(seed uint64) bool {
		out := check.RunSeed(seed, cfg)
		for _, v := range out.Violations {
			t.Logf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
		return !out.Failed()
	}
}

func TestSimInvariantsUnderEchelonMADD(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.EchelonMADD{Backfill: true}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderCoflowMADD(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.CoflowMADD{Backfill: true}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderFair(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.Fair{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderSRPT(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.SRPT{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimInvariantsUnderEDF(t *testing.T) {
	if err := quick.Check(simProperty(t, sched.EDF{}), &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
