// Command echelon-sim runs one DDLT training job on the fluid fabric under
// a chosen scheduler and prints the timeline, per-flow report, and group
// tardiness — a workbench for exploring scheduling behaviour.
//
// Usage:
//
//	echelon-sim -paradigm pp -scheduler echelon -workers 4 -cap 4
//	echelon-sim -paradigm fsdp -scheduler coflow -iterations 2 -gantt
//	echelon-sim -paradigm pp -cap 6 -params 2 -acts 5 -faults examples/faults/chaos.json
//	echelon-sim -paradigm dp -fabric leafspine:hosts=2,spines=2,oversub=4
package main

import (
	"flag"
	"fmt"
	"os"

	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/trace"
	"echelonflow/internal/unit"
)

func main() {
	var (
		paradigm   = flag.String("paradigm", "pp", "dp | ps | pp | 1f1b | tp | fsdp")
		scheduler  = flag.String("scheduler", "echelon", "echelon | echelon-gedf | coflow | fair | srpt | fifo | edf")
		workers    = flag.Int("workers", 4, "worker count")
		layers     = flag.Int("layers", 4, "model layers")
		micro      = flag.Int("micro", 4, "micro-batches (pp)")
		iterations = flag.Int("iterations", 1, "training iterations")
		capacity   = flag.Float64("cap", 4, "per-host NIC capacity (bytes/s)")
		params     = flag.Float64("params", 4, "per-layer parameter bytes")
		acts       = flag.Float64("acts", 4, "per-layer activation bytes")
		fwd        = flag.Float64("fwd", 1, "per-layer forward time (s)")
		bwd        = flag.Float64("bwd", 1, "per-layer backward time (s)")
		gantt      = flag.Bool("gantt", true, "print the compute timeline")
		flows      = flag.Bool("flows", false, "print the per-flow report")
		faultsFile = flag.String("faults", "", "JSON fault schedule to replay (see examples/faults/)")
		fabricFlag = flag.String("fabric", "bigswitch", "network model: bigswitch | leafspine[:hosts=N,spines=N,oversub=R] | extern:<cmd>")
	)
	flag.Parse()

	spec, err := fabric.ParseSpec(*fabricFlag)
	if err != nil {
		fatal(err)
	}

	w, err := buildJob(*paradigm, *workers, *layers, *micro, *iterations,
		unit.Bytes(*params), unit.Bytes(*acts), unit.Time(*fwd), unit.Time(*bwd))
	if err != nil {
		fatal(err)
	}
	s, err := pickScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}
	caps := make([]fabric.HostCap, len(w.Hosts))
	for i, name := range w.Hosts {
		caps[i] = fabric.HostCap{Name: name, Egress: unit.Rate(*capacity), Ingress: unit.Rate(*capacity)}
	}
	net, err := spec.Build(caps)
	if err != nil {
		fatal(err)
	}
	if e, ok := net.(*fabric.Extern); ok {
		defer e.Close()
	}
	opts := sim.Options{Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements}
	if *faultsFile != "" {
		schedF, err := faults.Load(*faultsFile)
		if err != nil {
			fatal(err)
		}
		opts.CapacityChanges, opts.Dilations, err = faults.CompileSim(schedF, net)
		if err != nil {
			fatal(err)
		}
	}
	simr, err := sim.New(opts)
	if err != nil {
		fatal(err)
	}
	res, err := simr.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("paradigm=%s scheduler=%s workers=%d layers=%d iterations=%d capacity=%g\n",
		*paradigm, s.Name(), *workers, *layers, *iterations, *capacity)
	fmt.Printf("makespan: %v  (per iteration: %v)  scheduler calls: %d\n\n",
		res.Makespan, res.Makespan/unit.Time(*iterations), res.SchedulerCalls)

	if *gantt {
		fmt.Println(trace.Gantt(res, w.Graph, 96))
	}

	tb := metrics.NewTable("group", "arrangement", "reference", "tardiness", "CCT")
	for _, gid := range w.Graph.Groups() {
		gr := res.Groups[gid]
		tb.AddRowf(gid, gr.Group.Arrangement.Name(), float64(gr.Reference),
			float64(gr.Tardiness), float64(gr.CompletionTime))
	}
	fmt.Println(tb.String())

	if *flows {
		fmt.Println(trace.FormatFlowReport(trace.FlowReport(res, "")))
	}
}

// buildJob compiles the requested paradigm with uniform layers.
func buildJob(paradigm string, workers, layers, micro, iterations int,
	params, acts unit.Bytes, fwd, bwd unit.Time) (*ddlt.Workload, error) {
	names := make([]string, workers)
	for i := range names {
		// Workers are named s0..sN, matching the hosts the shipped fault
		// schedules (examples/faults/) target.
		names[i] = fmt.Sprintf("s%d", i)
	}
	model := ddlt.Uniform("model", layers, params, acts, fwd, bwd)
	switch paradigm {
	case "dp":
		return ddlt.DPAllReduce{Name: "dp", Model: model, Workers: names,
			BucketCount: min(2, layers), Iterations: iterations}.Build()
	case "ps":
		return ddlt.DPParameterServer{Name: "ps", Model: model, Workers: names,
			PS: "ps0", BucketCount: min(2, layers), AggTime: fwd / 4, Iterations: iterations}.Build()
	case "pp":
		return ddlt.PipelineGPipe{Name: "pp", Model: model, Workers: names,
			MicroBatches: micro, Iterations: iterations}.Build()
	case "1f1b":
		return ddlt.Pipeline1F1B{Name: "1f1b", Model: model, Workers: names,
			MicroBatches: micro, Iterations: iterations}.Build()
	case "tp":
		return ddlt.TensorParallel{Name: "tp", Model: model, Workers: names,
			Iterations: iterations}.Build()
	case "fsdp":
		return ddlt.FSDP{Name: "fsdp", Model: model, Workers: names,
			Iterations: iterations}.Build()
	default:
		return nil, fmt.Errorf("unknown paradigm %q (want dp|ps|pp|tp|fsdp)", paradigm)
	}
}

// pickScheduler maps a CLI name to a scheduler.
func pickScheduler(name string) (sched.Scheduler, error) {
	switch name {
	case "echelon":
		return sched.EchelonMADD{Backfill: true}, nil
	case "echelon-minimal":
		return sched.EchelonMADD{}, nil
	case "echelon-gedf":
		return sched.EchelonMADD{Backfill: true, GlobalEDF: true}, nil
	case "edf":
		return sched.EDF{}, nil
	case "coflow":
		return sched.CoflowMADD{Backfill: true}, nil
	case "fair":
		return sched.Fair{}, nil
	case "srpt":
		return sched.SRPT{}, nil
	case "fifo":
		return sched.FIFO{}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "echelon-sim:", err)
	os.Exit(1)
}
