// Command echelon-netsim is the reference external timing model for the
// -fabric extern:<cmd> backend. It speaks the line-oriented co-simulation
// protocol: one JSON request per stdin line,
//
//	{"id":1,"volumes":[{"src":"h0","dst":"h1","bytes":1048576}, ...]}
//
// answered by exactly one JSON line carrying the same id,
//
//	{"id":1,"time":0.0125}
//
// Its model is the big-switch bottleneck time Γ (the most loaded NIC's
// volume over capacity) over the host capacities given on the command
// line, scaled by -overhead — so with -overhead 1 and matching -cap it
// reproduces the native model exactly (useful for validating the extern
// plumbing end to end), and with -overhead > 1 it stands in for a more
// pessimistic detailed simulator.
//
// Usage:
//
//	echelon-sim -fabric 'extern:echelon-netsim -cap 4'
//	echelon-netsim -cap 4 -host big0=40 -host big1=40 -overhead 1.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type request struct {
	ID      uint64   `json:"id"`
	Volumes []volume `json:"volumes"`
}

type volume struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst"`
	Bytes float64 `json:"bytes"`
}

type response struct {
	ID    uint64  `json:"id"`
	Time  float64 `json:"time"`
	Error string  `json:"error,omitempty"`
}

// model computes Γ for one request: every host NIC is full duplex at its
// configured rate (defaultCap when unlisted), and the answer is the most
// loaded direction's volume over capacity, scaled by overhead.
type model struct {
	defaultCap float64
	hostCap    map[string]float64
	overhead   float64
}

func (m *model) capOf(host string) float64 {
	if c, ok := m.hostCap[host]; ok {
		return c
	}
	return m.defaultCap
}

func (m *model) gamma(req request) response {
	egress := make(map[string]float64)
	ingress := make(map[string]float64)
	for _, v := range req.Volumes {
		if v.Bytes < 0 {
			return response{ID: req.ID, Error: fmt.Sprintf("negative volume %g on %s->%s", v.Bytes, v.Src, v.Dst)}
		}
		egress[v.Src] += v.Bytes
		ingress[v.Dst] += v.Bytes
	}
	var gamma float64
	for _, dir := range []map[string]float64{egress, ingress} {
		for host, bytes := range dir {
			c := m.capOf(host)
			if c <= 0 {
				return response{ID: req.ID, Error: fmt.Sprintf("host %s has no capacity", host)}
			}
			if t := bytes / c; t > gamma {
				gamma = t
			}
		}
	}
	return response{ID: req.ID, Time: gamma * m.overhead}
}

type hostFlags map[string]float64

func (h hostFlags) String() string { return "" }

func (h hostFlags) Set(s string) error {
	name, rateStr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("host spec %q: want name=rate", s)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return fmt.Errorf("host spec %q: bad rate %q", s, rateStr)
	}
	h[name] = rate
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("echelon-netsim: ")
	defaultCap := flag.Float64("cap", 1, "NIC capacity (bytes/s) for hosts without a -host spec")
	overhead := flag.Float64("overhead", 1, "multiply every answer by this factor (a pessimistic stand-in model)")
	verbose := flag.Bool("v", false, "log each query to stderr")
	hosts := hostFlags{}
	flag.Var(hosts, "host", "per-host capacity override name=rate (repeatable)")
	flag.Parse()
	if *defaultCap <= 0 || *overhead <= 0 {
		log.Fatal("-cap and -overhead must be positive")
	}
	m := &model{defaultCap: *defaultCap, hostCap: hosts, overhead: *overhead}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	out := bufio.NewWriter(os.Stdout)
	for in.Scan() {
		line := in.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		resp := response{}
		if err := json.Unmarshal(line, &req); err != nil {
			// Without an id the reply cannot be correlated; report and keep
			// serving (the client times out and falls back for this query).
			log.Printf("bad request: %v", err)
			continue
		}
		resp = m.gamma(req)
		if *verbose {
			log.Printf("query %d: %d volumes -> time=%g err=%q", req.ID, len(req.Volumes), resp.Time, resp.Error)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			log.Fatalf("encode: %v", err)
		}
		data = append(data, '\n')
		if _, err := out.Write(data); err != nil {
			log.Fatalf("write: %v", err)
		}
		if err := out.Flush(); err != nil {
			log.Fatalf("flush: %v", err)
		}
	}
	if err := in.Err(); err != nil {
		log.Fatalf("read: %v", err)
	}
}
