package main

import "testing"

func TestGamma(t *testing.T) {
	m := &model{defaultCap: 4, hostCap: map[string]float64{"big": 8}, overhead: 1}
	req := request{ID: 7, Volumes: []volume{
		{Src: "a", Dst: "b", Bytes: 8},
		{Src: "a", Dst: "big", Bytes: 8},
	}}
	resp := m.gamma(req)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	// a's egress ships 16 bytes over 4 B/s; b and big are less loaded.
	if resp.ID != 7 || resp.Time != 4 {
		t.Errorf("gamma = %+v, want id 7 time 4", resp)
	}

	m.overhead = 1.5
	if resp := m.gamma(req); resp.Time != 6 {
		t.Errorf("gamma with overhead = %+v, want time 6", resp)
	}

	if resp := m.gamma(request{ID: 8, Volumes: []volume{{Src: "a", Dst: "b", Bytes: -1}}}); resp.Error == "" {
		t.Error("negative volume must answer a per-query error")
	}
}
