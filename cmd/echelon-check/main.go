// Command echelon-check runs the differential testing harness: it draws
// seeded random scenarios (DDLT jobs, ad-hoc DAGs, fault schedules), checks
// every invariant and differential oracle over them, and shrinks any
// failure to a minimal reproducer under testdata/repros/.
//
// Usage:
//
//	echelon-check -seed 1 -n 100          # check seeds 1..100
//	echelon-check -oracles feasible,live  # only some oracles
//	echelon-check -duration 30s           # stop after a time budget
//	echelon-check -repro path.json        # re-check one saved repro
//
// Output is byte-deterministic for a fixed seed range without -duration
// (the time budget necessarily makes the covered range timing-dependent).
// Exit status is 1 when any oracle fired, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"echelonflow/internal/check"
	"echelonflow/internal/fabric"
)

func main() {
	seed := flag.Uint64("seed", 1, "first generator seed")
	n := flag.Int("n", 100, "number of consecutive seeds to check")
	duration := flag.Duration("duration", 0, "optional wall-clock budget; stops early when exceeded")
	oracles := flag.String("oracles", "all", "comma-separated oracle list (or \"all\")")
	repros := flag.String("repros", "testdata/repros", "directory for shrunk failing scenarios")
	budget := flag.Int("shrink", 400, "shrinker budget in check runs per failure")
	repro := flag.String("repro", "", "path to a scenario or repro JSON to re-check instead of generating")
	wireCodec := flag.String("wire", "direct", "codec the live oracles round-trip replayed flow events through: direct (no codec), json, or binary")
	fabricFlag := flag.String("fabric", "bigswitch", "network model scenarios run on: bigswitch | leafspine[:hosts=N,spines=N,oversub=R] | extern:<cmd>")
	verbose := flag.Bool("v", false, "print every seed, not just failures")
	flag.Parse()

	sel, err := check.ParseOracles(*oracles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := check.Config{Oracles: sel, WireCodec: *wireCodec}
	cfg.Fabric, err = fabricBuilder(*fabricFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *repro != "" {
		os.Exit(checkRepro(*repro, cfg))
	}

	start := time.Now()
	checked, failures := 0, 0
	for i := 0; i < *n; i++ {
		if *duration > 0 && time.Since(start) > *duration {
			fmt.Printf("time budget exhausted after %d seeds\n", checked)
			break
		}
		s := *seed + uint64(i)
		sc := check.Generate(s)
		out := check.Run(sc, cfg)
		checked++
		if !out.Failed() {
			if *verbose {
				fmt.Printf("seed %d: ok (%d hosts, %d flows, %d computes, %d groups, %d fault events)\n",
					s, out.Hosts, out.Flows, out.Computes, out.Groups, out.FaultEvents)
			}
			continue
		}
		failures++
		v := out.Violations[0]
		fmt.Printf("seed %d: FAIL %s: %s\n", s, v.Oracle, v.Detail)
		for _, extra := range out.Violations[1:] {
			fmt.Printf("seed %d:      %s: %s\n", s, extra.Oracle, extra.Detail)
		}
		min := check.Shrink(sc, cfg, *budget)
		mo := check.Run(min, cfg)
		mv := v
		if mo.Failed() {
			mv = mo.Violations[0]
		}
		path, err := check.WriteRepro(*repros, s, min, mv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: cannot write repro: %v\n", s, err)
			continue
		}
		fmt.Printf("seed %d: shrunk to %d hosts, %d flows, %d computes -> %s\n",
			s, mo.Hosts, mo.Flows, mo.Computes, path)
	}
	fmt.Printf("checked %d seeds, %d failed\n", checked, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// fabricBuilder maps the -fabric flag to the check harness backend hook.
// bigswitch returns nil, keeping the harness's native (byte-identical)
// default path. For extern, one external process is launched up front and
// rebound to each scenario's host set, so checking thousands of scenarios
// (the shrinker alone re-runs hundreds) does not spawn a subprocess per run.
func fabricBuilder(s string) (func(hosts []check.HostSpec) fabric.Fabric, error) {
	spec, err := fabric.ParseSpec(s)
	if err != nil {
		return nil, err
	}
	toCaps := func(hosts []check.HostSpec) []fabric.HostCap {
		caps := make([]fabric.HostCap, len(hosts))
		for i, h := range hosts {
			caps[i] = fabric.HostCap{Name: h.Name, Egress: h.Egress, Ingress: h.Ingress}
		}
		return caps
	}
	switch spec.Kind {
	case "bigswitch":
		return nil, nil
	case "extern":
		proto, err := fabric.NewExtern(fabric.NewNetwork(), spec.Command, fabric.ExternOptions{
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			return nil, err
		}
		return func(hosts []check.HostSpec) fabric.Fabric {
			n := fabric.NewNetwork()
			for _, h := range hosts {
				if err := n.AddHost(h.Name, h.Egress, h.Ingress); err != nil {
					panic(err) // generator-controlled names: cannot collide
				}
			}
			return proto.Rebind(n)
		}, nil
	default:
		return func(hosts []check.HostSpec) fabric.Fabric {
			f, err := spec.Build(toCaps(hosts))
			if err != nil {
				panic(err) // geometry was validated by ParseSpec
			}
			return f
		}, nil
	}
}

// checkRepro re-runs one saved scenario (bare, or wrapped in the repro
// envelope WriteRepro emits) and reports its violations.
func checkRepro(path string, cfg check.Config) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc, err := check.ParseRepro(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out := check.Run(sc, cfg)
	if !out.Failed() {
		fmt.Printf("%s: ok (%d hosts, %d flows, %d computes)\n", path, out.Hosts, out.Flows, out.Computes)
		return 0
	}
	for _, v := range out.Violations {
		fmt.Printf("%s: FAIL %s: %s\n", path, v.Oracle, v.Detail)
	}
	return 1
}
