// Command echelon-loadgen drives a live coordinator's job-arrival pipeline:
// per-tenant sessions submit seeded training jobs over the control protocol,
// and each admission is executed by replaying the job's compiled flow
// lifecycle (release/finish per communication) as fast as the coordinator
// schedules it. It measures admission waits and flow-event throughput.
//
// The job stream is deterministic in -seed; the coordinator decides
// placement and admission order, so the loadgen only needs the fabric to be
// large enough for -workers (plus one host for "ps" jobs).
//
//	echelon-coordinator -listen 127.0.0.1:7100 -queue -host 'w[0-3]=1e9' &
//	echelon-loadgen -coordinator 127.0.0.1:7100 -tenants 4 -jobs 64 -iterations 8
//
// With -bench the summary line is machine-readable for echelon-benchguard:
//
//	echelon-loadgen ... -bench | go run ./cmd/echelon-benchguard -baseline BENCH_loadgen.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"echelonflow/internal/dag"
	"echelonflow/internal/queue"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// config is one loadgen run.
type config struct {
	addr       string
	tenants    int
	jobs       int
	iterations int
	maxWorkers int
	paradigms  []string
	seed       int64
	timeout    time.Duration
	verbose    bool
	forceJSON  bool // -wire json: announce v3, legacy framing, no batching
}

// stats aggregates the run across tenants.
type stats struct {
	flowEvents int64 // atomic: flow lifecycle messages sent

	mu        sync.Mutex
	submitted int
	admitted  int
	rejected  int
	departed  int
	throttled int // throttle/queue-full pushbacks absorbed by retry
	waits     []time.Duration
	elapsed   time.Duration
}

// waitQuantile returns the q-quantile of recorded admission waits.
func (st *stats) waitQuantile(q float64) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.waits) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), st.waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "coordinator", "127.0.0.1:7100", "coordinator control address")
	flag.IntVar(&cfg.tenants, "tenants", 2, "concurrent submitting sessions")
	flag.IntVar(&cfg.jobs, "jobs", 8, "total jobs across all tenants")
	flag.IntVar(&cfg.iterations, "iterations", 4, "training iterations per job (more iterations, more flow events)")
	flag.IntVar(&cfg.maxWorkers, "workers", 3, "max workers per job (must fit the fabric; ps jobs use one more host)")
	paradigms := flag.String("paradigms", "dp,ps,pp,1f1b,tp,fsdp", "paradigm mix to draw jobs from")
	flag.Int64Var(&cfg.seed, "seed", 1, "job stream seed")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "overall run deadline")
	bench := flag.Bool("bench", false, "print a benchguard-parsable benchmark line")
	wireMode := flag.String("wire", "binary", "wire framing for sends: binary (protocol 4, batched flow events) or json (announce v3, legacy framing)")
	flag.BoolVar(&cfg.verbose, "v", false, "log each job transition")
	flag.Parse()
	cfg.paradigms = strings.Split(*paradigms, ",")
	switch *wireMode {
	case "binary":
	case "json":
		cfg.forceJSON = true
	default:
		log.Fatalf("echelon-loadgen: unknown -wire mode %q (binary or json)", *wireMode)
	}

	st, err := run(cfg)
	if err != nil {
		log.Fatalf("echelon-loadgen: %v", err)
	}
	evs := atomic.LoadInt64(&st.flowEvents)
	secs := st.elapsed.Seconds()
	fmt.Printf("echelon-loadgen: %d jobs (%d admitted, %d rejected, %d retries), %d flow events in %.2fs (%.0f events/s)\n",
		st.submitted, st.admitted, st.rejected, st.throttled, evs, secs, float64(evs)/secs)
	fmt.Printf("echelon-loadgen: admission wait p50=%s p95=%s max=%s\n",
		st.waitQuantile(0.50), st.waitQuantile(0.95), st.waitQuantile(1.0))
	if *bench {
		nsPerEvent := 0.0
		if evs > 0 {
			nsPerEvent = float64(st.elapsed.Nanoseconds()) / float64(evs)
		}
		fmt.Printf("BenchmarkLoadgen_%dJobs%dTenants 1 %d ns/op %.1f ns/flowevent %.0f events/sec\n",
			cfg.jobs, cfg.tenants, st.elapsed.Nanoseconds(), nsPerEvent, float64(evs)/secs)
	}
	if st.admitted == 0 {
		fmt.Fprintln(os.Stderr, "echelon-loadgen: no job was admitted; is the coordinator running with -queue?")
		os.Exit(1)
	}
}

// run executes the whole load: cfg.jobs jobs dealt round-robin to
// cfg.tenants sessions, each running its share sequentially.
func run(cfg config) (*stats, error) {
	if cfg.tenants < 1 || cfg.jobs < 1 {
		return nil, fmt.Errorf("need at least one tenant and one job")
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	perTenant := make([][]wire.JobSpec, cfg.tenants)
	for i := 0; i < cfg.jobs; i++ {
		t := i % cfg.tenants
		spec := genJob(rng, fmt.Sprintf("lg%d/j%d", t, i), fmt.Sprintf("lg%d", t), cfg)
		perTenant[t] = append(perTenant[t], spec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	st := &stats{}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.tenants)
	for t := 0; t < cfg.tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			if err := runTenant(ctx, cfg, fmt.Sprintf("lg%d", t), perTenant[t], st); err != nil {
				errCh <- fmt.Errorf("tenant lg%d: %w", t, err)
				cancel()
			}
		}(t)
	}
	wg.Wait()
	st.elapsed = time.Since(start)
	select {
	case err := <-errCh:
		return st, err
	default:
		return st, nil
	}
}

// genJob draws one deterministic job for a tenant.
func genJob(rng *rand.Rand, id, tenant string, cfg config) wire.JobSpec {
	p := cfg.paradigms[rng.Intn(len(cfg.paradigms))]
	workers := 2
	if cfg.maxWorkers > 2 {
		workers += rng.Intn(cfg.maxWorkers - 1)
	}
	j := wire.JobSpec{
		ID: id, Tenant: tenant, Paradigm: p, Workers: workers,
		Layers: 2 + rng.Intn(3),
		Params: unit.Bytes(0.5 + 2*rng.Float64()), Acts: unit.Bytes(0.3 + rng.Float64()),
		Fwd: unit.Time(0.05 + 0.1*rng.Float64()), Bwd: unit.Time(0.05 + 0.1*rng.Float64()),
		Iterations: cfg.iterations,
	}
	switch p {
	case "dp", "ps":
		j.Buckets = rng.Intn(3)
		if p == "ps" {
			j.AggTime = 0.05
		}
	case "pp", "1f1b":
		j.Micro = 2 + rng.Intn(3)
		j.UpdateTime = 0.05
		if j.Layers < workers {
			j.Layers = workers // pipelines need one layer per stage
		}
	case "fsdp":
		j.Prefetch = rng.Intn(3)
	}
	return j
}

// session wraps one tenant's control connection: a background reader
// dispatches job updates and recoverable rejections; everything else
// (allocations, heartbeats) is drained and dropped.
type session struct {
	conn    net.Conn
	codec   *wire.Codec
	batch   bool // batch flow events into FlowBatch frames (v4 sessions)
	updates chan wire.JobUpdate
	rejects chan wire.Error
	readErr chan error
}

func dialSession(ctx context.Context, addr, name string, forceJSON bool) (*session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &session{
		conn:    conn,
		codec:   wire.NewCodec(conn),
		updates: make(chan wire.JobUpdate, 64),
		rejects: make(chan wire.Error, 64),
		readErr: make(chan error, 1),
	}
	version := wire.ProtocolVersion
	if forceJSON {
		version = wire.JSONProtocolVersion
	}
	hello := wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Agent: name, Version: version}}
	if err := s.codec.Send(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if !forceJSON {
		// The hello itself always travels in legacy JSON framing; everything
		// after it may switch to binary. FlowBatch needs a v4 coordinator too.
		s.codec.EnableBinary()
		s.batch = true
	}
	go s.readLoop()
	go s.heartbeatLoop(ctx)
	context.AfterFunc(ctx, func() { conn.Close() })
	return s, nil
}

// heartbeatLoop keeps the session out of the coordinator's silent-agent
// reaper (-session-timeout): a tenant waiting on a queued admission or a
// backlogged departure push would otherwise send nothing for the whole wait.
func (s *session) heartbeatLoop(ctx context.Context) {
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := s.codec.Send(wire.Message{Type: wire.TypeHeartbeat}); err != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

func (s *session) readLoop() {
	for {
		msg, err := s.codec.Recv()
		if err != nil {
			s.readErr <- err
			return
		}
		switch msg.Type {
		case wire.TypeJobUpdate:
			s.updates <- *msg.JobUpdate
		case wire.TypeError:
			if msg.Error.Code == "" {
				s.readErr <- fmt.Errorf("coordinator: %s", msg.Error.Msg)
				return
			}
			s.rejects <- *msg.Error
		}
	}
}

// runTenant submits the tenant's jobs one at a time and executes each
// admission to departure.
func runTenant(ctx context.Context, cfg config, name string, jobs []wire.JobSpec, st *stats) error {
	if len(jobs) == 0 {
		return nil
	}
	s, err := dialSession(ctx, cfg.addr, name, cfg.forceJSON)
	if err != nil {
		return err
	}
	defer s.conn.Close()
	for _, spec := range jobs {
		if err := submitAndRun(ctx, cfg, s, spec, st); err != nil {
			return err
		}
	}
	return nil
}

// submitAndRun pushes one job through its whole lifecycle, retrying
// throttle and queue-full pushback with a short backoff.
func submitAndRun(ctx context.Context, cfg config, s *session, spec wire.JobSpec, st *stats) error {
	submittedAt := time.Now()
	st.mu.Lock()
	st.submitted++
	st.mu.Unlock()
	for {
		if err := s.codec.Send(wire.Message{Type: wire.TypeSubmitJob, SubmitJob: &wire.SubmitJob{Job: spec}}); err != nil {
			return err
		}
		hosts, outcome, err := awaitDecision(ctx, s, spec.ID)
		if err != nil {
			return err
		}
		switch outcome {
		case wire.JobAdmitted:
			st.mu.Lock()
			st.admitted++
			st.waits = append(st.waits, time.Since(submittedAt))
			st.mu.Unlock()
			if cfg.verbose {
				log.Printf("echelon-loadgen: %s admitted on %v", spec.ID, hosts)
			}
			return executeJob(ctx, s, spec, hosts, st)
		case wire.JobRejected:
			st.mu.Lock()
			st.rejected++
			st.mu.Unlock()
			if cfg.verbose {
				log.Printf("echelon-loadgen: %s rejected", spec.ID)
			}
			return nil
		default: // throttled or queue-full: back off and resubmit
			st.mu.Lock()
			st.throttled++
			st.mu.Unlock()
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// awaitDecision waits for the job's admission outcome: its placement, a
// rejection, or a recoverable pushback ("" hosts, error-code outcome).
func awaitDecision(ctx context.Context, s *session, jobID string) ([]string, string, error) {
	for {
		select {
		case u := <-s.updates:
			if u.JobID != jobID {
				continue // stale departure of a previous job
			}
			switch u.Status {
			case wire.JobAdmitted:
				return u.Hosts, wire.JobAdmitted, nil
			case wire.JobRejected:
				return nil, wire.JobRejected, nil
			}
		case e := <-s.rejects:
			if e.Code == wire.ErrCodeBadJob {
				return nil, wire.JobRejected, nil
			}
			return nil, e.Code, nil
		case err := <-s.readErr:
			return nil, "", err
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}

// executeJob replays the admitted job's flow lifecycle. The workload is
// compiled locally on the admitted placement — the byte-identical
// compilation the coordinator registered — so flow and group IDs line up
// without any extra protocol.
func executeJob(ctx context.Context, s *session, spec wire.JobSpec, hosts []string, st *stats) error {
	w, err := queue.Build(spec, hosts)
	if err != nil {
		return fmt.Errorf("compile admitted job %s: %w", spec.ID, err)
	}
	// On v4 sessions amortize framing: release/finish pairs ride in FlowBatch
	// chunks, which the coordinator applies in order exactly like loose events.
	const batchMax = 32
	var batch []wire.FlowEvent
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		msg := wire.Message{Type: wire.TypeFlowBatch, FlowBatch: &wire.FlowBatch{Events: batch}}
		if err := s.codec.Send(msg); err != nil {
			return err
		}
		atomic.AddInt64(&st.flowEvents, int64(len(batch)))
		batch = batch[:0]
		return nil
	}
	for _, n := range w.Graph.Nodes() {
		if n.Kind != dag.Comm {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		for _, event := range []string{wire.EventReleased, wire.EventFinished} {
			ev := wire.FlowEvent{GroupID: gid, FlowID: n.ID, Event: event}
			if !s.batch {
				msg := wire.Message{Type: wire.TypeFlowEvent, FlowEvent: &ev}
				if err := s.codec.Send(msg); err != nil {
					return err
				}
				atomic.AddInt64(&st.flowEvents, 1)
				continue
			}
			batch = append(batch, ev)
			if len(batch) >= batchMax {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// The last finish departs the job; wait for the push so per-tenant
	// submission stays sequential (and throughput numbers include the
	// coordinator's full pipeline, not just our send loop).
	for {
		select {
		case u := <-s.updates:
			if u.JobID == spec.ID && u.Status == wire.JobDeparted {
				st.mu.Lock()
				st.departed++
				st.mu.Unlock()
				return nil
			}
		case err := <-s.readErr:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
