package main

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/fabric"
	"echelonflow/internal/queue"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
)

// bootCoordinator serves a queue-enabled coordinator on a loopback port and
// returns its address plus the live metrics registry.
func bootCoordinator(t *testing.T, qopts queue.Options) (string, *telemetry.Registry, *coordinator.Coordinator) {
	t.Helper()
	net0 := fabric.NewNetwork()
	net0.AddUniformHosts(1e9, "w0", "w1", "w2", "w3")
	reg := telemetry.NewRegistry()
	co, err := coordinator.New(coordinator.Options{
		Net:       net0,
		Scheduler: sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}),
		Queue:     queue.New(qopts),
		Metrics:   reg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		co.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		co.Close()
	})
	return ln.Addr().String(), reg, co
}

// TestLoadgenLifecycle drives a full run against a live coordinator: every
// job admitted, executed and departed, the queue drained, and flow events
// counted on both ends.
func TestLoadgenLifecycle(t *testing.T) {
	addr, _, co := bootCoordinator(t, queue.Options{MaxJobs: 2})
	cfg := config{
		addr: addr, tenants: 2, jobs: 6, iterations: 2, maxWorkers: 3,
		paradigms: []string{"dp", "ps", "pp", "1f1b", "tp", "fsdp"},
		seed:      1, timeout: time.Minute,
	}
	st, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.submitted != 6 || st.admitted != 6 || st.departed != 6 || st.rejected != 0 {
		t.Fatalf("submitted/admitted/departed/rejected = %d/%d/%d/%d, want 6/6/6/0",
			st.submitted, st.admitted, st.departed, st.rejected)
	}
	if evs := atomic.LoadInt64(&st.flowEvents); evs == 0 {
		t.Fatal("no flow events sent")
	}
	if pending, running := co.QueueDepth(); pending != 0 || running != 0 {
		t.Errorf("queue not drained: %d pending, %d running", pending, running)
	}
	if len(st.waits) != 6 {
		t.Errorf("recorded %d admission waits, want 6", len(st.waits))
	}
}

// TestLoadgenUnplaceableRejected pins the rejection path: jobs wider than
// the fabric are reported rejected, not admitted and not fatal.
func TestLoadgenUnplaceableRejected(t *testing.T) {
	addr, _, _ := bootCoordinator(t, queue.Options{})
	cfg := config{
		addr: addr, tenants: 1, jobs: 2, iterations: 1, maxWorkers: 9,
		paradigms: []string{"tp"}, seed: 3, timeout: time.Minute,
	}
	// Force every job wide: genJob draws 2..maxWorkers, so pin with a
	// paradigm-independent check after the run instead of seed hunting.
	st, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.submitted != 2 {
		t.Fatalf("submitted = %d", st.submitted)
	}
	if st.admitted+st.rejected != 2 {
		t.Errorf("admitted %d + rejected %d != 2", st.admitted, st.rejected)
	}
}

// TestLoadgenThrottleRetry pins pushback absorption: with a 1-job queue and
// admit limit, concurrent tenants hit queue-full and must retry through it
// rather than fail.
func TestLoadgenThrottleRetry(t *testing.T) {
	addr, _, co := bootCoordinator(t, queue.Options{MaxQueued: 1, MaxJobs: 1})
	cfg := config{
		addr: addr, tenants: 3, jobs: 9, iterations: 1, maxWorkers: 2,
		paradigms: []string{"dp"}, seed: 7, timeout: time.Minute,
	}
	st, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.departed != 9 {
		t.Fatalf("departed = %d, want 9 (retries: %d)", st.departed, st.throttled)
	}
	if pending, running := co.QueueDepth(); pending != 0 || running != 0 {
		t.Errorf("queue not drained: %d pending, %d running", pending, running)
	}
}
