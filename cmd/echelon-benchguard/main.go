// Command echelon-benchguard compares benchmark output against a checked-in
// baseline and fails when the hot path regresses.
//
// Two suites are recognized. The scheduler scale benchmarks
// (BENCH_sched.json):
//
//	go test -bench 'BenchmarkSchedule_' -benchtime 2x -run '^$' . | \
//	    go run ./cmd/echelon-benchguard -baseline BENCH_sched.json
//
// the live job-pipeline loadgen (BENCH_loadgen.json):
//
//	echelon-loadgen -coordinator ... -bench | \
//	    go run ./cmd/echelon-benchguard -baseline BENCH_loadgen.json
//
// and the wire codec microbenchmarks (BENCH_wire.json):
//
//	go test -bench 'BenchmarkWire_' -run '^$' ./internal/wire | \
//	    go run ./cmd/echelon-benchguard -baseline BENCH_wire.json
//
// The guard parses the custom per-call metrics ("ns/schedcall",
// "allocs/schedcall", "ns/flowevent") and the wire suite's standard
// "ns/op"/"allocs/op", matches each benchmark to its baseline entry, and
// exits non-zero if a metric exceeds the baseline by more than the
// threshold factor (default 1.25). It is meant as an advisory CI gate:
// benchmark noise on shared runners is real, so treat a failure as a
// prompt to re-run and investigate, not as proof of a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors the subset of BENCH_sched.json the guard consumes.
type baseline struct {
	Suite   string                     `json:"suite"`
	Results map[string]json.RawMessage `json:"results"`
}

// metrics is one variant's recorded numbers inside a results entry.
// Advisory marks the variant as a soft gate: a regression is reported as
// WARN instead of failing the run — used for newly added sizes whose
// baselines have not yet stabilized across runners.
type metrics struct {
	NsPerCall      float64 `json:"ns_per_schedcall"`
	AllocsPerCall  float64 `json:"allocs_per_schedcall"`
	NsPerFlowEvent float64 `json:"ns_per_flowevent"`
	NsPerMsg       float64 `json:"ns_per_msg"`
	AllocsPerMsg   float64 `json:"allocs_per_msg"`
	Advisory       bool    `json:"advisory,omitempty"`
}

// measurement is one parsed benchmark line.
type measurement struct {
	Key     string // e.g. "256hosts_8jobs"
	Variant string // "pooled_cached", "pooled_nocache", "pooled_instrumented", "pooled_deadline", "pooled_delta" or "pooled_full_event"
	metrics
}

// benchLine matches the scale benchmarks' names, capturing host count, job
// count, and the optional suffix selecting the cache-disabled,
// telemetry-wrapped, or per-event (incremental vs full) configuration.
var benchLine = regexp.MustCompile(`^BenchmarkSchedule_(\d+)Hosts(\d+)Jobs(_NoCache|_Instrumented|_Deadline|_DeltaEvent|_FullEvent)?(?:-\d+)?\s+(.*)$`)

// loadgenLine matches echelon-loadgen's -bench output, capturing the job
// and tenant counts.
var loadgenLine = regexp.MustCompile(`^BenchmarkLoadgen_(\d+)Jobs(\d+)Tenants(?:-\d+)?\s+(.*)$`)

// wireLine matches the wire codec round-trip benchmarks, capturing the
// message shape and the framing variant. These report the standard
// testing.B metrics, one full Send+Recv per op.
var wireLine = regexp.MustCompile(`^BenchmarkWire_([A-Za-z0-9]+)_(JSON|Binary)(?:-\d+)?\s+(.*)$`)

// parseBench extracts measurements from `go test -bench` output. Lines that
// are not scale-benchmark results are ignored, as are benchmark lines
// missing the custom metrics (e.g. when run without bench_sched_test.go).
func parseBench(r io.Reader) ([]measurement, error) {
	var out []measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			if lg := loadgenLine.FindStringSubmatch(sc.Text()); lg != nil {
				meas := measurement{
					Key:     fmt.Sprintf("%sjobs_%stenants", lg[1], lg[2]),
					Variant: "live",
				}
				var err error
				if meas.NsPerFlowEvent, err = metricValue(lg[3], "ns/flowevent"); err != nil {
					return nil, fmt.Errorf("%s: %v", sc.Text(), err)
				}
				out = append(out, meas)
			} else if w := wireLine.FindStringSubmatch(sc.Text()); w != nil {
				meas := measurement{
					Key:     strings.ToLower(w[1]),
					Variant: strings.ToLower(w[2]),
				}
				var err error
				if meas.NsPerMsg, err = metricValue(w[3], "ns/op"); err != nil {
					return nil, fmt.Errorf("%s: %v", sc.Text(), err)
				}
				if meas.AllocsPerMsg, err = metricValue(w[3], "allocs/op"); err != nil {
					return nil, fmt.Errorf("%s: %v", sc.Text(), err)
				}
				out = append(out, meas)
			}
			continue
		}
		meas := measurement{
			Key:     fmt.Sprintf("%shosts_%sjobs", m[1], m[2]),
			Variant: "pooled_cached",
		}
		switch m[3] {
		case "_NoCache":
			meas.Variant = "pooled_nocache"
		case "_Instrumented":
			meas.Variant = "pooled_instrumented"
		case "_Deadline":
			meas.Variant = "pooled_deadline"
		case "_DeltaEvent":
			meas.Variant = "pooled_delta"
		case "_FullEvent":
			meas.Variant = "pooled_full_event"
		}
		var err error
		if meas.NsPerCall, err = metricValue(m[4], "ns/schedcall"); err != nil {
			return nil, fmt.Errorf("%s: %v", sc.Text(), err)
		}
		if meas.AllocsPerCall, err = metricValue(m[4], "allocs/schedcall"); err != nil {
			return nil, fmt.Errorf("%s: %v", sc.Text(), err)
		}
		out = append(out, meas)
	}
	return out, sc.Err()
}

// metricValue pulls the number preceding the named unit from a benchmark
// result line's field list.
func metricValue(fields, unit string) (float64, error) {
	re := regexp.MustCompile(`(\S+)\s+` + regexp.QuoteMeta(unit) + `(\s|$)`)
	m := re.FindStringSubmatch(fields)
	if m == nil {
		return 0, fmt.Errorf("no %q metric", unit)
	}
	return strconv.ParseFloat(m[1], 64)
}

// check compares measurements to the baseline and returns one line per
// comparison plus whether any metric regressed beyond the threshold.
func check(meas []measurement, base *baseline, threshold float64) (lines []string, regressed bool) {
	for _, m := range meas {
		raw, ok := base.Results[m.Key]
		if !ok {
			lines = append(lines, fmt.Sprintf("SKIP %s/%s: no baseline entry", m.Key, m.Variant))
			continue
		}
		var variants map[string]json.RawMessage
		if err := json.Unmarshal(raw, &variants); err != nil {
			lines = append(lines, fmt.Sprintf("SKIP %s: malformed baseline entry: %v", m.Key, err))
			continue
		}
		vraw, ok := variants[m.Variant]
		if !ok {
			lines = append(lines, fmt.Sprintf("SKIP %s/%s: no baseline variant", m.Key, m.Variant))
			continue
		}
		var want metrics
		if err := json.Unmarshal(vraw, &want); err != nil {
			lines = append(lines, fmt.Sprintf("SKIP %s/%s: malformed baseline variant: %v", m.Key, m.Variant, err))
			continue
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"ns/schedcall", m.NsPerCall, want.NsPerCall},
			{"allocs/schedcall", m.AllocsPerCall, want.AllocsPerCall},
			{"ns/flowevent", m.NsPerFlowEvent, want.NsPerFlowEvent},
			{"ns/msg", m.NsPerMsg, want.NsPerMsg},
			{"allocs/msg", m.AllocsPerMsg, want.AllocsPerMsg},
		} {
			if c.want <= 0 {
				continue
			}
			ratio := c.got / c.want
			verdict := "ok  "
			if ratio > threshold {
				if want.Advisory {
					verdict = "WARN"
				} else {
					verdict = "FAIL"
					regressed = true
				}
			}
			lines = append(lines, fmt.Sprintf("%s %s/%s %s: %.1f vs baseline %.1f (%.2fx, limit %.2fx)",
				verdict, m.Key, m.Variant, c.name, c.got, c.want, ratio, threshold))
		}
	}
	return lines, regressed
}

func main() {
	basePath := flag.String("baseline", "BENCH_sched.json", "baseline metrics file")
	in := flag.String("in", "-", "benchmark output to check ('-' for stdin)")
	threshold := flag.Float64("threshold", 1.25, "allowed slowdown factor before failing")
	flag.Parse()

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "parse %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	meas, err := parseBench(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(meas) == 0 {
		fmt.Fprintln(os.Stderr, "no BenchmarkSchedule_*/BenchmarkLoadgen_*/BenchmarkWire_* results found in input")
		os.Exit(2)
	}

	lines, regressed := check(meas, &base, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if regressed {
		fmt.Println("bench-guard: regression beyond threshold")
		os.Exit(1)
	}
	fmt.Printf("bench-guard: %d benchmarks within %.2fx of baseline\n", len(meas), *threshold)
}
