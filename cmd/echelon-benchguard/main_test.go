package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: echelonflow
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedule_64Hosts4Jobs-4      	       2	  30212345 ns/op	     124.5 allocs/schedcall	  56141 ns/schedcall	  69.00 schedcalls/run
BenchmarkSchedule_256Hosts8Jobs-4     	       2	 120212345 ns/op	     241.9 allocs/schedcall	 178752 ns/schedcall	  69.00 schedcalls/run
BenchmarkSchedule_256Hosts8Jobs_NoCache-4 	   2	 150212345 ns/op	     238.8 allocs/schedcall	 230846 ns/schedcall	  69.00 schedcalls/run
BenchmarkSchedule_256Hosts8Jobs_Instrumented-4 	   2	 122212345 ns/op	     245.1 allocs/schedcall	 180903 ns/schedcall	  69.00 schedcalls/run
BenchmarkSchedule_2048Hosts64Jobs_DeltaEvent-4 	  50	    335472 ns/op	     533.0 allocs/schedcall	 315608 ns/schedcall
BenchmarkSchedule_2048Hosts64Jobs_FullEvent-4 	  50	   2345278 ns/op	    3894 allocs/schedcall	2324675 ns/schedcall
PASS
ok  	echelonflow	4.2s
`

const sampleBaseline = `{
  "suite": "BenchmarkSchedule_*",
  "results": {
    "64hosts_4jobs": {
      "seed": {"ns_per_schedcall": 126192, "allocs_per_schedcall": 1827},
      "pooled_cached": {"ns_per_schedcall": 56141, "allocs_per_schedcall": 124.5},
      "speedup": "2.2x"
    },
    "256hosts_8jobs": {
      "pooled_cached": {"ns_per_schedcall": 178752, "allocs_per_schedcall": 241.9},
      "pooled_nocache": {"ns_per_schedcall": 230846, "allocs_per_schedcall": 238.8},
      "pooled_instrumented": {"ns_per_schedcall": 180903, "allocs_per_schedcall": 245.1}
    },
    "2048hosts_64jobs": {
      "pooled_delta": {"ns_per_schedcall": 315608, "allocs_per_schedcall": 533.0, "advisory": true},
      "pooled_full_event": {"ns_per_schedcall": 2324675, "allocs_per_schedcall": 3894, "advisory": true}
    }
  }
}`

func loadBaseline(t *testing.T) *baseline {
	t.Helper()
	var b baseline
	if err := json.Unmarshal([]byte(sampleBaseline), &b); err != nil {
		t.Fatal(err)
	}
	return &b
}

func TestParseBench(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 6 {
		t.Fatalf("parsed %d measurements, want 6: %+v", len(meas), meas)
	}
	want := []measurement{
		{Key: "64hosts_4jobs", Variant: "pooled_cached", metrics: metrics{NsPerCall: 56141, AllocsPerCall: 124.5}},
		{Key: "256hosts_8jobs", Variant: "pooled_cached", metrics: metrics{NsPerCall: 178752, AllocsPerCall: 241.9}},
		{Key: "256hosts_8jobs", Variant: "pooled_nocache", metrics: metrics{NsPerCall: 230846, AllocsPerCall: 238.8}},
		{Key: "256hosts_8jobs", Variant: "pooled_instrumented", metrics: metrics{NsPerCall: 180903, AllocsPerCall: 245.1}},
		{Key: "2048hosts_64jobs", Variant: "pooled_delta", metrics: metrics{NsPerCall: 315608, AllocsPerCall: 533.0}},
		{Key: "2048hosts_64jobs", Variant: "pooled_full_event", metrics: metrics{NsPerCall: 2324675, AllocsPerCall: 3894}},
	}
	for i, w := range want {
		if meas[i] != w {
			t.Errorf("measurement %d = %+v, want %+v", i, meas[i], w)
		}
	}
}

func TestCheckWithinThreshold(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	lines, regressed := check(meas, loadBaseline(t), 1.25)
	if regressed {
		t.Errorf("baseline-equal measurements flagged as regression:\n%s", strings.Join(lines, "\n"))
	}
	// 6 measurements x 2 metrics.
	if len(lines) != 12 {
		t.Errorf("got %d comparison lines, want 12", len(lines))
	}
}

// TestCheckAdvisoryWarnsOnly pins the soft gate: a regression on a variant
// whose baseline is marked advisory reports WARN but never fails the run.
func TestCheckAdvisoryWarnsOnly(t *testing.T) {
	meas := []measurement{{
		Key: "2048hosts_64jobs", Variant: "pooled_delta",
		metrics: metrics{NsPerCall: 315608 * 2, AllocsPerCall: 533.0},
	}}
	lines, regressed := check(meas, loadBaseline(t), 1.25)
	if regressed {
		t.Errorf("advisory variant regression failed the run:\n%s", strings.Join(lines, "\n"))
	}
	warned := false
	for _, l := range lines {
		if strings.HasPrefix(l, "WARN") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("advisory regression produced no WARN line:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	meas := []measurement{{
		Key: "64hosts_4jobs", Variant: "pooled_cached",
		metrics: metrics{NsPerCall: 56141 * 1.5, AllocsPerCall: 124.5},
	}}
	lines, regressed := check(meas, loadBaseline(t), 1.25)
	if !regressed {
		t.Errorf("1.5x slowdown not flagged:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckAllocRegression(t *testing.T) {
	meas := []measurement{{
		Key: "64hosts_4jobs", Variant: "pooled_cached",
		metrics: metrics{NsPerCall: 56141, AllocsPerCall: 124.5 * 2},
	}}
	if _, regressed := check(meas, loadBaseline(t), 1.25); !regressed {
		t.Error("2x allocation growth not flagged")
	}
}

func TestCheckSkipsUnknownKeys(t *testing.T) {
	meas := []measurement{{Key: "9hosts_9jobs", Variant: "pooled_cached"}}
	lines, regressed := check(meas, loadBaseline(t), 1.25)
	if regressed {
		t.Error("missing baseline entry treated as regression")
	}
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "SKIP") {
		t.Errorf("want one SKIP line, got %v", lines)
	}
}

const sampleLoadgen = `echelon-loadgen: 64 jobs (64 admitted, 0 rejected, 0 retries), 51200 flow events in 3.10s (16516 events/s)
echelon-loadgen: admission wait p50=2ms p95=11ms max=40ms
BenchmarkLoadgen_64Jobs4Tenants 1 3100000000 ns/op 60546.9 ns/flowevent 16516 events/sec
`

const sampleLoadgenBaseline = `{
  "suite": "BenchmarkLoadgen_*",
  "results": {
    "64jobs_4tenants": {
      "live": {"ns_per_flowevent": 60546.9, "advisory": true}
    }
  }
}`

// TestParseLoadgenBench pins the loadgen suite's line format and the
// advisory-only gating its baseline ships with.
func TestParseLoadgenBench(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleLoadgen))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 1 {
		t.Fatalf("parsed %d measurements, want 1: %+v", len(meas), meas)
	}
	want := measurement{Key: "64jobs_4tenants", Variant: "live", metrics: metrics{NsPerFlowEvent: 60546.9}}
	if meas[0] != want {
		t.Errorf("measurement = %+v, want %+v", meas[0], want)
	}

	var base baseline
	if err := json.Unmarshal([]byte(sampleLoadgenBaseline), &base); err != nil {
		t.Fatal(err)
	}
	lines, regressed := check(meas, &base, 1.25)
	if regressed || len(lines) != 1 || !strings.HasPrefix(lines[0], "ok") {
		t.Errorf("baseline-equal loadgen run: regressed=%v lines=%v", regressed, lines)
	}
	// 3x slowdown on an advisory baseline: WARN, never FAIL.
	meas[0].NsPerFlowEvent *= 3
	lines, regressed = check(meas, &base, 1.25)
	if regressed {
		t.Errorf("advisory loadgen regression failed the run:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "WARN") {
		t.Errorf("want one WARN line, got %v", lines)
	}
}

func TestParseBenchIgnoresForeignLines(t *testing.T) {
	meas, err := parseBench(strings.NewReader("BenchmarkOther-4 1 5 ns/op\nrandom noise\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 0 {
		t.Errorf("parsed foreign benchmarks: %+v", meas)
	}
}

func TestParseBenchMissingMetricErrors(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkSchedule_64Hosts4Jobs-4 2 30212345 ns/op\n"))
	if err == nil {
		t.Error("benchmark line without schedcall metrics accepted")
	}
}
