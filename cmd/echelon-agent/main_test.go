package main

import "testing"

func TestParseSendSpec(t *testing.T) {
	src, dst, flows, size, T, err := parseSendSpec("w1,w2,3,1048576,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if src != "w1" || dst != "w2" || flows != 3 || size != 1048576 || T != 0.25 {
		t.Errorf("parsed = %v %v %v %v %v", src, dst, flows, size, T)
	}
	bad := []string{
		"w1,w2,3,100",          // too few fields
		"w1,w2,0,100,1",        // zero flows
		"w1,w2,x,100,1",        // bad flows
		"w1,w2,3,-1,1",         // negative size
		"w1,w2,3,nan-bytes,1",  // bad size
		"w1,w2,3,100,x",        // bad T
		"w1,w2,3,100,-1",       // negative T
		"w1,w2,3,100,0.5,more", // too many fields
	}
	for _, spec := range bad {
		if _, _, _, _, _, err := parseSendSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
