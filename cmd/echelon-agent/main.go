// Command echelon-agent runs a standalone EchelonFlow Agent (paper Fig. 7):
// it connects to the Coordinator, optionally serves a data plane for
// incoming flows, and can drive a demo pipeline EchelonFlow of real bytes
// against a peer agent.
//
// Receiver:
//
//	echelon-agent -name a2 -coordinator 127.0.0.1:7100 -data 127.0.0.1:7201
//
// Sender (3 pipeline flows of 1 MiB from host w1 to w2):
//
//	echelon-agent -name a1 -coordinator 127.0.0.1:7100 \
//	    -send w1,w2,3,1048576,0.25 -peer 127.0.0.1:7201
//
// With -admin a telemetry endpoint serves Prometheus /metrics (reconnect
// counters, heartbeat RTT), /healthz, /events and /debug/pprof:
//
//	echelon-agent -name a1 -coordinator 127.0.0.1:7100 -admin 127.0.0.1:7191
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"echelonflow/internal/agent"
	"echelonflow/internal/core"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

func main() {
	name := flag.String("name", "", "agent name (required)")
	coord := flag.String("coordinator", "127.0.0.1:7100", "coordinator control address")
	data := flag.String("data", "", "data-plane listen address (receivers)")
	send := flag.String("send", "", "demo send spec: src,dst,flows,bytes,T")
	peer := flag.String("peer", "", "peer agent data-plane address (senders)")
	reconnect := flag.Bool("reconnect", false, "redial a lost coordinator session with backoff and resume in-flight flows")
	backoff := flag.Duration("reconnect-backoff", 100*time.Millisecond, "initial redial delay (doubles up to 5s)")
	admin := flag.String("admin", "", "telemetry HTTP address serving /metrics, /healthz, /events and /debug/pprof (empty disables)")
	wireMode := flag.String("wire", "binary", "wire framing for sends: binary (protocol 4) or json (announce v3, legacy framing)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	aopts := agent.Options{
		Name: *name, CoordinatorAddr: *coord, DataAddr: *data,
		Reconnect: *reconnect, ReconnectBackoff: *backoff,
	}
	switch *wireMode {
	case "binary":
	case "json":
		aopts.ForceJSON = true
	default:
		log.Fatalf("echelon-agent: unknown -wire mode %q (binary or json)", *wireMode)
	}
	if *admin != "" {
		aopts.Metrics = telemetry.NewRegistry()
		aopts.Events = telemetry.NewEventLog(telemetry.DefaultEventCapacity)
		addr, shutdown, err := telemetry.StartAdmin(*admin, aopts.Metrics, aopts.Events, nil)
		if err != nil {
			log.Fatalf("echelon-agent: admin endpoint: %v", err)
		}
		defer shutdown()
		log.Printf("echelon-agent %s: admin endpoint on http://%s (/metrics /healthz /events /debug/pprof)", *name, addr)
	}
	a, err := agent.Dial(ctx, aopts)
	if err != nil {
		log.Fatalf("echelon-agent: %v", err)
	}
	defer a.Close()
	if *data != "" {
		log.Printf("echelon-agent %s: data plane on %s", *name, a.DataAddr())
	}

	if *send == "" {
		log.Printf("echelon-agent %s: connected to %s; waiting (ctrl-c to exit)", *name, *coord)
		<-ctx.Done()
		return
	}

	src, dst, flows, size, T, err := parseSendSpec(*send)
	if err != nil {
		log.Fatalf("echelon-agent: %v", err)
	}
	if *peer == "" {
		log.Fatal("echelon-agent: -send requires -peer")
	}
	if err := runDemoSend(ctx, a, src, dst, flows, size, T, *peer); err != nil {
		log.Fatalf("echelon-agent: %v", err)
	}
}

// parseSendSpec parses "src,dst,flows,bytes,T".
func parseSendSpec(spec string) (src, dst string, flows int, size int64, T float64, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 5 {
		return "", "", 0, 0, 0, fmt.Errorf("send spec %q: want src,dst,flows,bytes,T", spec)
	}
	src, dst = parts[0], parts[1]
	flows, err = strconv.Atoi(parts[2])
	if err != nil || flows < 1 {
		return "", "", 0, 0, 0, fmt.Errorf("send spec %q: bad flow count", spec)
	}
	size, err = strconv.ParseInt(parts[3], 10, 64)
	if err != nil || size < 0 {
		return "", "", 0, 0, 0, fmt.Errorf("send spec %q: bad size", spec)
	}
	T, err = strconv.ParseFloat(parts[4], 64)
	if err != nil || T < 0 {
		return "", "", 0, 0, 0, fmt.Errorf("send spec %q: bad T", spec)
	}
	return src, dst, flows, size, T, nil
}

// runDemoSend registers a pipeline EchelonFlow and streams its flows to the
// peer, staggering releases by T to mimic upstream computation.
func runDemoSend(ctx context.Context, a *agent.Agent, src, dst string, flows int, size int64, T float64, peer string) error {
	groupID := fmt.Sprintf("demo-%d", os.Getpid())
	specs := make([]*core.Flow, flows)
	for i := range specs {
		specs[i] = &core.Flow{
			ID:  fmt.Sprintf("%s/f%d", groupID, i),
			Src: src, Dst: dst, Size: unit.Bytes(size), Stage: i,
		}
	}
	g, err := core.New(groupID, core.Pipeline{T: unit.Time(T)}, specs...)
	if err != nil {
		return err
	}
	if err := a.RegisterGroup(g); err != nil {
		return err
	}
	log.Printf("echelon-agent: registered %s", g)

	start := time.Now()
	errCh := make(chan error, flows)
	for i, f := range specs {
		go func(id string) {
			err := a.SendFlow(ctx, groupID, id, size, peer)
			if err == nil {
				log.Printf("echelon-agent: %s finished at %.3fs", id, time.Since(start).Seconds())
			}
			errCh <- err
		}(f.ID)
		if i < flows-1 {
			select {
			case <-time.After(time.Duration(T * float64(time.Second))):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	for range specs {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return a.UnregisterGroup(groupID)
}
