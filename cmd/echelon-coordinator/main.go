// Command echelon-coordinator runs the EchelonFlow Coordinator daemon
// (paper Fig. 7): it listens for Agent sessions, schedules registered
// EchelonFlows on every flow arrival/departure, and pushes bandwidth
// allocations.
//
// The fabric capacity model is given as host specs:
//
//	echelon-coordinator -listen :7100 -host w1=1e9 -host w2=1e9
//	echelon-coordinator -listen :7100 -host 'gpu[0-7]=125e6' -scheduler coflow
//
// With -admin a telemetry endpoint serves Prometheus /metrics, /healthz,
// a JSONL /events tail of flow lifecycle events, and /debug/pprof:
//
//	echelon-coordinator -listen :7100 -admin 127.0.0.1:7190 -host w1=1e9 -host w2=1e9
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/fabric"
	"echelonflow/internal/queue"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

// hostSpecs collects repeated -host flags.
type hostSpecs []string

func (h *hostSpecs) String() string     { return strings.Join(*h, ",") }
func (h *hostSpecs) Set(v string) error { *h = append(*h, v); return nil }

func main() {
	var hosts hostSpecs
	listen := flag.String("listen", "127.0.0.1:7100", "control listen address")
	schedName := flag.String("scheduler", "echelon", "echelon | coflow | fair")
	delta := flag.Bool("delta", true, "with -scheduler echelon, patch single-flow events incrementally instead of re-solving every group (falls back to a full pass whenever equivalence is unprovable)")
	coalesce := flag.Duration("coalesce", 0, "batch flow events arriving within this window into one reschedule (0 reschedules per event)")
	interval := flag.Duration("interval", 0, "optional periodic rescheduling interval")
	sessionTimeout := flag.Duration("session-timeout", 30*time.Second, "drop agents silent for this long (0 disables)")
	quarantine := flag.Duration("quarantine", 0, "park a dead agent's groups this long awaiting rejoin (0 evicts immediately)")
	journalDir := flag.String("journal", "", "write-ahead journal directory: state survives a crash and is replayed on restart (empty disables)")
	groupCommit := flag.Duration("group-commit", 0, "journal group-commit window: batch fsyncs up to this long (or -group-commit-bytes) instead of per append; 0 keeps per-append fsync")
	groupCommitBytes := flag.Int("group-commit-bytes", 0, "journal group-commit batch-size flush threshold in bytes (default 256KiB when -group-commit is set)")
	snapshotEvery := flag.Int("journal-snapshot", 256, "with -journal, compact the log into a snapshot after this many events (0 never compacts)")
	redialRate := flag.Float64("redial-rate", 0, "max reconnects per agent name per second (0 disables admission control)")
	redialBurst := flag.Float64("redial-burst", 0, "redial admission burst (default 1 when -redial-rate is set)")
	queueEnable := flag.Bool("queue", false, "accept online job submissions: queue arrivals, place and admit them")
	placement := flag.String("placement", "spread", "with -queue, the worker placement policy: pack | spread | netaware")
	admission := flag.String("admission", "fifo", "with -queue, the admission order: fifo | srpt")
	queueCap := flag.Int("queue-cap", 0, "with -queue, max pending submissions (0 unlimited)")
	admitLimit := flag.Int("admit-limit", 0, "with -queue, max concurrently admitted jobs (0 unlimited)")
	maxShare := flag.Float64("max-share", 0, "with -queue, cap admitted jobs' predicted demand to this fraction of fabric capacity (0 disables)")
	submitRate := flag.Float64("submit-rate", 0, "max job submissions per tenant per second (0 disables throttling)")
	submitBurst := flag.Float64("submit-burst", 0, "submission burst per tenant (default 1 when -submit-rate is set)")
	schedDeadline := flag.Duration("sched-deadline", 0, "time budget per scheduling pass: on overrun push a max-min fair fallback instead of stalling (0 disables)")
	deadlineTrip := flag.Int("deadline-trip", 0, "with -sched-deadline, consecutive overruns that open the fallback circuit breaker (default 3)")
	deadlineCooldown := flag.Duration("deadline-cooldown", 0, "with -sched-deadline, how long the opened breaker holds the fallback before probing recovery (default 10x the budget)")
	shedHighWater := flag.Int("shed-high-water", 0, "shed new job submissions with a throttled error while more than this many inbound events are queued (0 disables)")
	stragglerRTT := flag.Duration("straggler-rtt", 0, "soft-quarantine agents whose heartbeat RTT EWMA exceeds this: their events batch instead of triggering immediate passes (0 disables)")
	pingInterval := flag.Duration("ping-interval", 0, "with -straggler-rtt, the heartbeat probe interval (default 1s)")
	sendBuffer := flag.Int("send-buffer", 0, "outbound frames buffered per agent session; overflowing tears the session down (default 64)")
	inboundQueue := flag.Int("inbound-queue", 0, "inbound events queued per agent session before TCP backpressure (default 256)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-frame write deadline on agent sockets (default 10s)")
	admin := flag.String("admin", "", "telemetry HTTP address serving /metrics, /healthz, /events and /debug/pprof (empty disables)")
	chaos := flag.Bool("chaos", false, "with -admin, mount a POST /chaos fault-injection endpoint (sched-stall, agent-stall, fsync-stall) — soak testing only, never in production")
	fabricFlag := flag.String("fabric", "bigswitch", "network model: bigswitch | leafspine[:hosts=N,spines=N,oversub=R] | extern:<cmd>")
	var racks, assigns hostSpecs
	flag.Var(&hosts, "host", "host capacity spec name=rate or name[a-b]=rate (repeatable)")
	flag.Var(&racks, "rack", "rack capacity spec name=rate (uplink=downlink; bigswitch only; repeatable)")
	flag.Var(&assigns, "assign", "host-to-rack assignment host=rack or prefix[a-b]=rack (bigswitch only; repeatable)")
	flag.Parse()

	fspec, err := fabric.ParseSpec(*fabricFlag)
	if err != nil {
		log.Fatalf("echelon-coordinator: %v", err)
	}
	inner := fabric.NewNetwork()
	for _, spec := range hosts {
		if err := addHostSpec(inner, spec); err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
	}
	if inner.Len() == 0 {
		log.Fatal("echelon-coordinator: at least one -host spec is required")
	}
	if fspec.Kind == "leafspine" && len(racks)+len(assigns) > 0 {
		// Leaf-spine carries its own topology; racks belong to bigswitch
		// (leaf geometry comes from the spec's hosts/spines/oversub options).
		log.Fatal("echelon-coordinator: -rack/-assign only apply to -fabric bigswitch")
	}
	for _, spec := range racks {
		name, rateStr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("echelon-coordinator: rack spec %q: want name=rate", spec)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			log.Fatalf("echelon-coordinator: rack spec %q: bad rate", spec)
		}
		if err := inner.AddRack(name, unit.Rate(rate), unit.Rate(rate)); err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
	}
	for _, spec := range assigns {
		if err := assignRackSpec(inner, spec); err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
	}
	var net0 fabric.Fabric = inner
	switch fspec.Kind {
	case "leafspine":
		caps := make([]fabric.HostCap, 0, inner.Len())
		for _, h := range inner.Hosts() {
			caps = append(caps, fabric.HostCap{Name: h.Name, Egress: h.Egress, Ingress: h.Ingress})
		}
		ls, err := fspec.Build(caps)
		if err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
		net0 = ls
		log.Printf("echelon-coordinator: fabric %s", fspec)
	case "extern":
		e, err := fabric.NewExtern(inner, fspec.Command, fabric.ExternOptions{Logf: log.Printf})
		if err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
		defer e.Close()
		net0 = e
	}

	var s sched.Scheduler
	switch *schedName {
	case "echelon":
		inner := sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}
		if *delta {
			s = sched.NewDelta(inner)
		} else {
			s = inner
		}
	case "coflow":
		s = sched.CoflowMADD{Backfill: true}
	case "fair":
		s = sched.Fair{}
	default:
		log.Fatalf("echelon-coordinator: unknown scheduler %q", *schedName)
	}
	if *schedName != "echelon" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "delta" {
				log.Printf("echelon-coordinator: -delta only applies to -scheduler echelon; %s reschedules fully", *schedName)
			}
		})
	}

	opts := coordinator.Options{
		Net: net0, Scheduler: s, Interval: *interval, SessionTimeout: *sessionTimeout,
		QuarantineTimeout: *quarantine, SnapshotEvery: *snapshotEvery, Coalesce: *coalesce,
		RedialRate: *redialRate, RedialBurst: *redialBurst,
		SubmitRate: *submitRate, SubmitBurst: *submitBurst,
		SchedDeadline: *schedDeadline, DeadlineTripAfter: *deadlineTrip, DeadlineCooldown: *deadlineCooldown,
		ShedHighWater: *shedHighWater, StragglerRTT: *stragglerRTT, PingInterval: *pingInterval,
		SendBuffer: *sendBuffer, InboundQueue: *inboundQueue, WriteTimeout: *writeTimeout,
		GroupCommit: *groupCommit, GroupCommitBytes: *groupCommitBytes,
	}
	if *groupCommit > 0 {
		if *journalDir == "" {
			log.Printf("echelon-coordinator: -group-commit has no effect without -journal")
		} else {
			log.Printf("echelon-coordinator: journal group-commit enabled (window %v)", *groupCommit)
		}
	}
	if *schedDeadline > 0 {
		log.Printf("echelon-coordinator: scheduling passes budgeted at %v (max-min fair fallback on overrun)", *schedDeadline)
	}
	if *stragglerRTT > 0 {
		log.Printf("echelon-coordinator: gray-failure detection armed (soft-quarantine above %v RTT)", *stragglerRTT)
	}
	if *queueEnable {
		placer, err := queue.PlacerByName(*placement)
		if err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
		order, err := queue.OrderByName(*admission)
		if err != nil {
			log.Fatalf("echelon-coordinator: %v", err)
		}
		opts.Queue = queue.New(queue.Options{
			Placer: placer, Order: order,
			MaxQueued: *queueCap, MaxJobs: *admitLimit, MaxShare: *maxShare,
		})
		log.Printf("echelon-coordinator: job queue enabled (%s placement, %s admission)", placer.Name(), order.Name())
	}
	if *admin != "" {
		opts.Metrics = telemetry.NewRegistry()
		opts.Events = telemetry.NewEventLog(telemetry.DefaultEventCapacity)
	}
	var coord *coordinator.Coordinator
	if *journalDir != "" {
		// Restore is New plus journaling: an empty directory is a fresh
		// start, a populated one replays the previous incarnation's state
		// and quarantines its groups until the agents redial.
		coord, err = coordinator.Restore(opts, *journalDir)
	} else {
		coord, err = coordinator.New(opts)
	}
	if err != nil {
		log.Fatalf("echelon-coordinator: %v", err)
	}
	defer coord.Close()
	if *admin != "" {
		var extra map[string]http.HandlerFunc
		if *chaos {
			extra = map[string]http.HandlerFunc{"/chaos": chaosHandler(coord)}
			log.Printf("echelon-coordinator: CHAOS endpoint armed on /chaos — do not expose in production")
		}
		addr, shutdown, err := telemetry.StartAdminWith(*admin, opts.Metrics, opts.Events, nil, extra)
		if err != nil {
			log.Fatalf("echelon-coordinator: admin endpoint: %v", err)
		}
		defer shutdown()
		log.Printf("echelon-coordinator: admin endpoint on http://%s (/metrics /healthz /events /debug/pprof)", addr)
	} else if *chaos {
		log.Fatal("echelon-coordinator: -chaos requires -admin")
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("echelon-coordinator: %v", err)
	}
	log.Printf("echelon-coordinator: scheduling %d hosts with %s on %s", net0.Len(), s.Name(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := coord.Serve(ctx, ln); err != nil {
		log.Fatalf("echelon-coordinator: %v", err)
	}
	computed, pushed := coord.PushStats()
	log.Printf("echelon-coordinator: shut down after %d scheduling decisions (%d/%d allocation entries pushed)",
		coord.Reschedules(), pushed, computed)
}

// chaosHandler serves the -chaos fault-injection surface used by the
// nightly soak: POST /chaos?fault=KIND&d=DURATION injects (or, with d=0,
// clears) one fault.
//
//	fault=sched-stall   d=500ms            slow every scheduling pass by d
//	fault=agent-stall   d=2s&agent=lg0     stall writes to one agent's socket
//	fault=fsync-stall   d=20ms             slow every journal fsync
func chaosHandler(coord *coordinator.Coordinator) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		d, err := time.ParseDuration(r.URL.Query().Get("d"))
		if err != nil || d < 0 {
			http.Error(w, "bad or missing d= duration", http.StatusBadRequest)
			return
		}
		switch fault := r.URL.Query().Get("fault"); fault {
		case "sched-stall":
			err = coord.SetSchedStall(d)
		case "agent-stall":
			agent := r.URL.Query().Get("agent")
			if agent == "" {
				http.Error(w, "agent-stall needs agent=", http.StatusBadRequest)
				return
			}
			err = coord.SetAgentStall(agent, d)
		case "fsync-stall":
			coord.SetFsyncStall(d)
		default:
			http.Error(w, fmt.Sprintf("unknown fault %q", fault), http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
	}
}

// assignRackSpec parses "host=rack" or "prefix[a-b]=rack" assignments.
func assignRackSpec(n *fabric.Network, spec string) error {
	name, rack, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("assign spec %q: want host=rack", spec)
	}
	open := strings.Index(name, "[")
	if open < 0 {
		return n.AssignRack(name, rack)
	}
	close0 := strings.Index(name, "]")
	if close0 < open {
		return fmt.Errorf("assign spec %q: unbalanced brackets", spec)
	}
	prefix := name[:open]
	lo, hi, ok := strings.Cut(name[open+1:close0], "-")
	if !ok {
		return fmt.Errorf("assign spec %q: want prefix[a-b]=rack", spec)
	}
	a, err1 := strconv.Atoi(lo)
	b, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || b < a {
		return fmt.Errorf("assign spec %q: bad range", spec)
	}
	for i := a; i <= b; i++ {
		if err := n.AssignRack(fmt.Sprintf("%s%d", prefix, i), rack); err != nil {
			return err
		}
	}
	return nil
}

// addHostSpec parses "name=rate" or "prefix[a-b]=rate" and adds the hosts.
func addHostSpec(n *fabric.Network, spec string) error {
	name, rateStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("host spec %q: want name=rate", spec)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return fmt.Errorf("host spec %q: bad rate %q", spec, rateStr)
	}
	open := strings.Index(name, "[")
	if open < 0 {
		return n.AddHost(name, unit.Rate(rate), unit.Rate(rate))
	}
	close0 := strings.Index(name, "]")
	if close0 < open {
		return fmt.Errorf("host spec %q: unbalanced brackets", spec)
	}
	prefix := name[:open]
	lo, hi, ok := strings.Cut(name[open+1:close0], "-")
	if !ok {
		return fmt.Errorf("host spec %q: want prefix[a-b]=rate", spec)
	}
	a, err1 := strconv.Atoi(lo)
	b, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || b < a {
		return fmt.Errorf("host spec %q: bad range", spec)
	}
	for i := a; i <= b; i++ {
		if err := n.AddHost(fmt.Sprintf("%s%d", prefix, i), unit.Rate(rate), unit.Rate(rate)); err != nil {
			return err
		}
	}
	return nil
}
