package main

import (
	"testing"

	"echelonflow/internal/fabric"
)

func TestAddHostSpec(t *testing.T) {
	tests := []struct {
		spec      string
		wantErr   bool
		wantHosts []string
	}{
		{"w1=100", false, []string{"w1"}},
		{"gpu[0-2]=5e3", false, []string{"gpu0", "gpu1", "gpu2"}},
		{"noequals", true, nil},
		{"w1=notanumber", true, nil},
		{"w1=-5", true, nil},
		{"w1=0", true, nil},
		{"gpu[2-0]=10", true, nil},
		{"gpu[a-b]=10", true, nil},
		{"gpu[0=10", true, nil},
		{"gpu]0[=10", true, nil},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			n := fabric.NewNetwork()
			err := addHostSpec(n, tt.spec)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			for _, h := range tt.wantHosts {
				if n.Host(h) == nil {
					t.Errorf("host %q missing", h)
				}
			}
			if !tt.wantErr && n.Len() != len(tt.wantHosts) {
				t.Errorf("host count = %d, want %d", n.Len(), len(tt.wantHosts))
			}
		})
	}
}

func TestAddHostSpecDuplicate(t *testing.T) {
	n := fabric.NewNetwork()
	if err := addHostSpec(n, "w1=10"); err != nil {
		t.Fatal(err)
	}
	if err := addHostSpec(n, "w[0-2]=10"); err == nil {
		t.Error("duplicate host w1 accepted")
	}
}

func TestAssignRackSpec(t *testing.T) {
	n := fabric.NewNetwork()
	if err := addHostSpec(n, "gpu[0-3]=10"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRack("r0", 20, 20); err != nil {
		t.Fatal(err)
	}
	if err := assignRackSpec(n, "gpu[0-1]=r0"); err != nil {
		t.Fatal(err)
	}
	if n.RackOf("gpu0") != "r0" || n.RackOf("gpu1") != "r0" || n.RackOf("gpu2") != "" {
		t.Error("range assignment wrong")
	}
	if err := assignRackSpec(n, "gpu2=r0"); err != nil {
		t.Fatal(err)
	}
	bad := []string{"noequals", "ghost=r0", "gpu3=ghostrack", "gpu[2-0]=r0", "gpu]0[=r0", "gpu[x-y]=r0"}
	for _, spec := range bad {
		if err := assignRackSpec(n, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
