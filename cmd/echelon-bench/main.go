// Command echelon-bench regenerates every table and figure of the paper
// (and the extended evaluation) and prints the reports, including the
// machine-checked shape claims. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Usage:
//
//	echelon-bench            # run everything
//	echelon-bench -id fig2   # run one experiment
//	echelon-bench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"echelonflow/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run only the experiment with this ID")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	exps := experiments.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	failed := 0
	ran := 0
	for _, e := range exps {
		if *id != "" && e.ID != *id {
			continue
		}
		ran++
		report, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed to run: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(report.String())
		failed += len(report.Failed())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -id=%s (try -list)\n", *id)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d checks failed\n", failed)
		os.Exit(1)
	}
}
