// Multijob: several training jobs — different paradigms — compete on one
// fabric, the multi-tenant setting the paper's global objective (Eq. 4)
// targets. Compares the sum of EchelonFlow tardiness across schedulers.
package main

import (
	"fmt"
	"log"

	"echelonflow"
)

func buildJobs() (*echelonflow.Workload, error) {
	pp, err := echelonflow.PipelineGPipe{
		Name:         "tenantA-pp",
		Model:        echelonflow.UniformModel("m1", 4, 2, 5, 1, 1),
		Workers:      []string{"g0", "g1", "g2", "g3"},
		MicroBatches: 4,
		Iterations:   1,
	}.Build()
	if err != nil {
		return nil, err
	}
	dp, err := echelonflow.DPAllReduce{
		Name:        "tenantB-dp",
		Model:       echelonflow.UniformModel("m2", 4, 8, 1, 0.5, 0.5),
		Workers:     []string{"g1", "g2", "g3", "g4"}, // overlaps tenant A
		BucketCount: 2,
		Iterations:  1,
	}.Build()
	if err != nil {
		return nil, err
	}
	fsdp, err := echelonflow.FSDP{
		Name:       "tenantC-fsdp",
		Model:      echelonflow.UniformModel("m3", 3, 6, 1, 0.5, 0.75),
		Workers:    []string{"g0", "g2", "g4"},
		Iterations: 1,
	}.Build()
	if err != nil {
		return nil, err
	}
	return echelonflow.MergeWorkloads(pp, dp, fsdp)
}

func main() {
	fmt.Println("three tenants (PP, DP-AllReduce, FSDP) sharing 5 workers at 6 B/s:")
	fmt.Println()
	for _, s := range []echelonflow.Scheduler{
		echelonflow.EchelonScheduler(true),
		echelonflow.CoflowScheduler(true),
		echelonflow.FairScheduler(),
		echelonflow.SRPTScheduler(),
	} {
		w, err := buildJobs()
		if err != nil {
			log.Fatal(err)
		}
		res, err := echelonflow.SimulateUniform(w, 6, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s makespan %-8v sum tardiness (Eq. 4) %v\n",
			s.Name(), res.Makespan, res.TotalTardiness())
	}
	fmt.Println("\nEchelonFlow scheduling coordinates the tenants' drastically different")
	fmt.Println("computation patterns under one objective — the gap the paper's §1 identifies.")
}
