// Pipeline: reproduce the paper's motivating example (Fig. 2) — a pipeline
// stage pair where Coflow scheduling is worse than naive fair sharing and
// EchelonFlow scheduling is optimal — then run a full GPipe job under all
// three schedulers.
package main

import (
	"fmt"
	"log"

	"echelonflow"
	"echelonflow/internal/experiments"
)

func main() {
	// Part 1: the exact Fig. 2 scenario with its machine-checked numbers
	// (fair 8.5, coflow 10, echelon 8).
	report, err := experiments.Fig2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.String())

	// Part 2: a full 4-stage GPipe job on a contended fabric.
	fmt.Println("== full GPipe job, 4 stages x 6 micro-batches ==")
	schedulers := []echelonflow.Scheduler{
		echelonflow.EchelonScheduler(true),
		echelonflow.CoflowScheduler(true),
		echelonflow.FairScheduler(),
	}
	for _, s := range schedulers {
		job := echelonflow.PipelineGPipe{
			Name:         "pp",
			Model:        echelonflow.UniformModel("resnet-ish", 8, 2, 5, 0.5, 0.5),
			Workers:      []string{"s0", "s1", "s2", "s3"},
			MicroBatches: 6,
			Iterations:   2,
		}
		w, err := job.Build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := echelonflow.SimulateUniform(w, 4, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s iteration time %v, sum tardiness %v\n",
			s.Name(), res.Makespan/2, res.TotalTardiness())
	}
}
