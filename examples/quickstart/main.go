// Quickstart: define an EchelonFlow by hand, schedule it on a two-host
// fabric, and inspect ideal finish times and tardiness — the paper's §3
// abstraction in a dozen lines.
package main

import (
	"fmt"
	"log"

	"echelonflow"
)

func main() {
	// Three pipeline activations from w1 to w2, one per micro-batch. The
	// consuming stage computes for 2s per micro-batch, so ideal finish
	// times are staggered by T = 2 (Eq. 6).
	group, err := echelonflow.NewEchelonFlow("demo", echelonflow.Pipeline{T: 2},
		&echelonflow.Flow{ID: "mb0", Src: "w1", Dst: "w2", Size: 8, Stage: 0},
		&echelonflow.Flow{ID: "mb1", Src: "w1", Dst: "w2", Size: 8, Stage: 1},
		&echelonflow.Flow{ID: "mb2", Src: "w1", Dst: "w2", Size: 8, Stage: 2},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(group)
	fmt.Println("\nideal finish times with reference r = 0 (Eq. 6):")
	for i, d := range group.Deadlines(0) {
		fmt.Printf("  %-4s d_%d = %v\n", group.Flows[i].ID, i, d)
	}

	// Suppose the flows actually finished at 4, 6, 8 (a congested start,
	// then the arrangement was held): per-flow tardiness is uniform, and
	// the group tardiness (Eq. 2) is that common value.
	outcome := echelonflow.Outcome{
		Group:     group,
		Reference: 0,
		Finish:    map[string]echelonflow.Time{"mb0": 4, "mb1": 6, "mb2": 8},
	}
	tard, err := outcome.Tardiness()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved finishes 4, 6, 8 -> group tardiness (Eq. 2): %v\n", tard)
	fmt.Println("per-flow tardiness (Eq. 1):")
	for id, t := range outcome.PerFlow() {
		fmt.Printf("  %-4s %v\n", id, t)
	}

	// A Coflow is the degenerate arrangement (Property 2).
	coflow, err := echelonflow.NewCoflow("barrier",
		&echelonflow.Flow{ID: "a", Src: "w1", Dst: "w2", Size: 4},
		&echelonflow.Flow{ID: "b", Src: "w1", Dst: "w2", Size: 4},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s IsCoflow=%v: every deadline equals the reference time (Eq. 5)\n",
		coflow, coflow.IsCoflow())
}
