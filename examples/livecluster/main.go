// Livecluster: the paper's Fig. 7 system running for real — a Coordinator
// and two Agents on loopback TCP, moving actual bytes under scheduled,
// token-bucket-enforced rates. Prints each flow's wall-clock finish time;
// the pipeline EchelonFlow finishes staggered even though all three flows
// share one (modelled) link.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"echelonflow"
	"echelonflow/internal/agent"
	"echelonflow/internal/coordinator"
	"echelonflow/internal/sched"
)

func main() {
	const capacity = 400 << 10 // modelled 400 KiB/s per host
	const flowSize = 150 << 10

	// Capacity model of the "cluster": two hosts.
	netModel := echelonflow.NewNetwork()
	if err := netModel.AddHost("w1", capacity, capacity); err != nil {
		log.Fatal(err)
	}
	if err := netModel.AddHost("w2", capacity, capacity); err != nil {
		log.Fatal(err)
	}

	coord, err := coordinator.New(coordinator.Options{
		Net:       netModel,
		Scheduler: sched.EchelonMADD{Backfill: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		if err := coord.Serve(ctx, ln); err != nil {
			log.Printf("coordinator: %v", err)
		}
	}()
	defer serveWG.Wait()
	defer cancel()
	fmt.Printf("coordinator on %s\n", ln.Addr())

	sender, err := agent.Dial(ctx, agent.Options{Name: "agent-w1", CoordinatorAddr: ln.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	receiver, err := agent.Dial(ctx, agent.Options{
		Name: "agent-w2", CoordinatorAddr: ln.Addr().String(), DataAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer receiver.Close()
	fmt.Printf("agents up; data plane on %s\n\n", receiver.DataAddr())

	group, err := echelonflow.NewEchelonFlow("live/pp", echelonflow.Pipeline{T: 0.2},
		&echelonflow.Flow{ID: "mb0", Src: "w1", Dst: "w2", Size: flowSize, Stage: 0},
		&echelonflow.Flow{ID: "mb1", Src: "w1", Dst: "w2", Size: flowSize, Stage: 1},
		&echelonflow.Flow{ID: "mb2", Src: "w1", Dst: "w2", Size: flowSize, Stage: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sender.RegisterGroup(group); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, f := range group.Flows {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := sender.SendFlow(ctx, "live/pp", id, flowSize, receiver.DataAddr()); err != nil {
				log.Printf("send %s: %v", id, err)
				return
			}
			if err := receiver.WaitReceived(ctx, id); err != nil {
				log.Printf("wait %s: %v", id, err)
				return
			}
			fmt.Printf("%-4s finished at %6.3fs (%d bytes received)\n",
				id, time.Since(start).Seconds(), receiver.ReceivedBytes(id))
		}(f.ID)
		if i < len(group.Flows)-1 {
			time.Sleep(200 * time.Millisecond) // upstream "computation"
		}
	}
	wg.Wait()

	ref, tard, err := coord.GroupStatus("live/pp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinator: %d scheduling decisions; group reference %.3fs, achieved tardiness %.3fs\n",
		coord.Reschedules(), float64(ref), float64(tard))
}
