// FSDP: compile a ZeRO-3 style fully-sharded job (paper Fig. 3), inspect
// its Eq. 7 staggered-Coflow arrangement, and compare schedulers on a
// contended fabric.
package main

import (
	"fmt"
	"log"

	"echelonflow"
)

func main() {
	model := echelonflow.UniformModel("sharded-transformer", 6, 12, 1, 0.5, 1)
	job := echelonflow.FSDP{
		Name:       "fsdp",
		Model:      model,
		Workers:    []string{"w0", "w1", "w2", "w3"},
		Iterations: 1,
	}
	w, err := job.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The per-iteration all-gather EchelonFlow carries the Eq. 7
	// arrangement: 2n stages whose deadline gaps are the per-layer
	// forward then backward times.
	arr := w.Arrangements["fsdp/it0/ag"]
	fmt.Printf("all-gather EchelonFlow arrangement: %s\n", arr.Name())
	fmt.Println("stage deadlines from reference r = 0 (Eq. 7):")
	for s := 0; s < 12; s++ {
		phase := "fwd"
		layer := s
		if s >= 6 {
			phase = "bwd"
			layer = 11 - s
		}
		fmt.Printf("  stage %2d (%s layer %d): d = %v\n", s, phase, layer, arr.Deadline(s, 0))
	}

	fmt.Println("\nscheduler comparison (NIC capacity 9 B/s per worker):")
	for _, s := range []echelonflow.Scheduler{
		echelonflow.EchelonScheduler(true),
		echelonflow.CoflowScheduler(true),
		echelonflow.FairScheduler(),
	} {
		wl, err := job.Build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := echelonflow.SimulateUniform(wl, 9, s)
		if err != nil {
			log.Fatal(err)
		}
		ag := res.Groups["fsdp/it0/ag"]
		fmt.Printf("  %-16s iteration %v, all-gather EchelonFlow tardiness %v\n",
			s.Name(), res.Makespan, ag.Tardiness)
	}
}
