// Profiling: the paper's §3.1 workflow end to end — run a few uncontended
// iterations of a 1F1B pipeline, profile the computation pattern, derive
// the arrangement function ("more complicated than Eq. 6", §4 Case II),
// calibrate the workload, and schedule against it on a contended fabric.
package main

import (
	"fmt"
	"log"

	"echelonflow"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/profile"
)

func job() echelonflow.Pipeline1F1B {
	return echelonflow.Pipeline1F1B{
		Name:         "p1",
		Model:        echelonflow.UniformModel("m", 4, 2, 6, 1, 1),
		Workers:      []string{"s0", "s1", "s2", "s3"},
		MicroBatches: 6,
		Iterations:   1,
	}
}

func main() {
	// Step 1: profiling run on an uncontended fabric.
	probe, err := job().Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := echelonflow.SimulateUniform(probe, 1e4, echelonflow.FairScheduler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling run complete; deriving arrangement functions (paper §3.1)")

	// Step 2: verify the pattern is stable enough to trust (here we check
	// the forward units of the consuming stage are uniform).
	p := profile.FromResult(res)
	var stage1Fwds []string
	for m := 0; m < 6; m++ {
		stage1Fwds = append(stage1Fwds, fmt.Sprintf("p1/it0/fw/s1m%d", m))
	}
	if t, err := p.Uniform(stage1Fwds, 0.05); err != nil {
		log.Fatalf("pattern unstable: %v", err)
	} else {
		fmt.Printf("stage-1 per-micro-batch compute: %v (uniform)\n", t)
	}

	// Step 3: derive each group's Absolute arrangement from the observed
	// consumer start times and calibrate a fresh workload.
	w, err := job().Build()
	if err != nil {
		log.Fatal(err)
	}
	for group := range w.Arrangements {
		arr, err := profile.DeriveAbsolute(res, probe.Graph, group)
		if err != nil {
			log.Fatalf("derive %s: %v", group, err)
		}
		if err := ddlt.Calibrate(w, group, arr); err != nil {
			log.Fatal(err)
		}
	}
	arr := w.Arrangements["p1/it0/fwd0"].(echelonflow.Absolute)
	fmt.Printf("\nfwd0 profiled ideal-finish offsets: %v\n", arr.Offsets)
	fmt.Println("(warm-up spacing, then steady 1F1B spacing — beyond Eq. 6's uniform T)")

	// Step 4: schedule on a contended fabric with the calibrated deadlines.
	fmt.Println("\ncontended run (capacity 6) with calibrated arrangements:")
	for _, s := range []echelonflow.Scheduler{
		echelonflow.EchelonScheduler(true),
		echelonflow.EchelonSchedulerGlobalEDF(true),
		echelonflow.CoflowScheduler(true),
	} {
		w2, err := job().Build()
		if err != nil {
			log.Fatal(err)
		}
		for group := range w2.Arrangements {
			arr, err := profile.DeriveAbsolute(res, probe.Graph, group)
			if err != nil {
				log.Fatal(err)
			}
			if err := ddlt.Calibrate(w2, group, arr); err != nil {
				log.Fatal(err)
			}
		}
		out, err := echelonflow.SimulateUniform(w2, 6, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s makespan %-8v sum tardiness %v\n", s.Name(), out.Makespan, out.TotalTardiness())
	}
}
