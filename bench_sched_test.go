// BenchmarkSchedule_* is the scheduler scale suite: multi-job DP+PP+FSDP
// mixes on 64/256/512-host fabrics, driven through the event-loop simulator
// so the scheduler sees a realistic arrival/departure stream. Beyond the
// standard ns/op, each benchmark reports per-Schedule-call latency and
// allocation counts ("ns/schedcall", "allocs/schedcall"), the hot-path
// numbers tracked in BENCH_sched.json.
//
// Run with: go test -bench=BenchmarkSchedule_ -run=^$ .
package echelonflow

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

// buildScaleMix compiles `jobs` training jobs — cycling through pipeline,
// DP-allreduce, and FSDP paradigms — onto one fabric of `hosts` uniform
// hosts. Jobs occupy disjoint 4-worker slices of the host set; the fabric
// retains its full size so per-host scheduler costs (capacity profiles)
// scale with the cluster, not the tenant set.
func buildScaleMix(hosts, jobs int) (*ddlt.Workload, *fabric.Network, error) {
	net := fabric.NewNetwork()
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%03d", i)
	}
	net.AddUniformHosts(10, names...)

	var ws []*ddlt.Workload
	for j := 0; j < jobs; j++ {
		workers := make([]string, 4)
		for k := range workers {
			workers[k] = names[(j*4+k)%hosts]
		}
		var (
			w   *ddlt.Workload
			err error
		)
		switch j % 3 {
		case 0:
			w, err = ddlt.PipelineGPipe{
				Name: fmt.Sprintf("pp%d", j), Model: ddlt.Uniform("m", 4, 2, 5, 1, 1),
				Workers: workers, MicroBatches: 4, Iterations: 1,
			}.Build()
		case 1:
			w, err = ddlt.DPAllReduce{
				Name: fmt.Sprintf("dp%d", j), Model: ddlt.Uniform("m", 4, 6, 1, 0.5, 0.5),
				Workers: workers, BucketCount: 2, Iterations: 1,
			}.Build()
		default:
			w, err = ddlt.FSDP{
				Name: fmt.Sprintf("fsdp%d", j), Model: ddlt.Uniform("m", 4, 3, 1, 0.5, 1),
				Workers: workers, Iterations: 1,
			}.Build()
		}
		if err != nil {
			return nil, nil, err
		}
		ws = append(ws, w)
	}
	merged, err := ddlt.Merge(ws...)
	if err != nil {
		return nil, nil, err
	}
	return merged, net, nil
}

// meteredScheduler wraps a Scheduler and measures wall time and heap
// allocation count of every Schedule call, isolating the hot path from the
// surrounding simulator work.
type meteredScheduler struct {
	inner   sched.Scheduler
	calls   int
	ns      int64
	mallocs uint64
}

func (m *meteredScheduler) Name() string { return m.inner.Name() }

func (m *meteredScheduler) Schedule(snap *sched.Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	rates, err := m.inner.Schedule(snap, net)
	m.ns += time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&after)
	m.mallocs += after.Mallocs - before.Mallocs
	m.calls++
	return rates, err
}

// benchSchedule runs the mix to completion once per iteration with a fresh
// scheduler from mk, reporting aggregate per-call hot-path metrics.
func benchSchedule(b *testing.B, hosts, jobs int, mk func() sched.Scheduler) {
	b.Helper()
	var calls int
	var ns int64
	var mallocs uint64
	groupPeak := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, net, err := buildScaleMix(hosts, jobs)
		if err != nil {
			b.Fatal(err)
		}
		ms := &meteredScheduler{inner: mk()}
		simr, err := sim.New(sim.Options{
			Graph: w.Graph, Net: net, Scheduler: ms, Arrangements: w.Arrangements,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := simr.Run()
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) > groupPeak {
			groupPeak = len(res.Groups)
		}
		calls += ms.calls
		ns += ms.ns
		mallocs += ms.mallocs
		b.StartTimer()
	}
	b.StopTimer()
	if calls == 0 {
		b.Fatal("no scheduler calls recorded")
	}
	b.ReportMetric(float64(ns)/float64(calls), "ns/schedcall")
	b.ReportMetric(float64(mallocs)/float64(calls), "allocs/schedcall")
	b.ReportMetric(float64(calls)/float64(b.N), "schedcalls/run")
}

// echelonCached is the production configuration: EchelonMADD with backfill
// and the cross-event plan cache.
func echelonCached() sched.Scheduler {
	return sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}
}

// echelonNoCache disables cross-event memoization (profile pooling and
// parallel ranking remain); the comparison column for BENCH_sched.json.
func echelonNoCache() sched.Scheduler {
	return sched.EchelonMADD{Backfill: true}
}

func BenchmarkSchedule_64Hosts4Jobs(b *testing.B) {
	benchSchedule(b, 64, 4, echelonCached)
}

func BenchmarkSchedule_256Hosts8Jobs(b *testing.B) {
	benchSchedule(b, 256, 8, echelonCached)
}

func BenchmarkSchedule_256Hosts8Jobs_NoCache(b *testing.B) {
	benchSchedule(b, 256, 8, echelonNoCache)
}

// echelonInstrumented wraps the production configuration in the telemetry
// layer with a live registry — the cost of an -admin endpoint being
// configured, tracked as its own BENCH_sched.json variant.
func echelonInstrumented() sched.Scheduler {
	return sched.Instrument(echelonCached(), telemetry.NewRegistry())
}

func BenchmarkSchedule_256Hosts8Jobs_Instrumented(b *testing.B) {
	benchSchedule(b, 256, 8, echelonInstrumented)
}

// echelonDeadline wraps the production configuration in the overload-budget
// layer with a deliberately generous budget, so the breaker never trips and
// the benchmark isolates the wrapper's steady-state cost: the snapshot copy
// handed to the abandonable pass plus the slot/timer bookkeeping.
func echelonDeadline() sched.Scheduler {
	return sched.WithDeadline(echelonCached(), sched.DeadlineOptions{Budget: time.Minute})
}

func BenchmarkSchedule_256Hosts8Jobs_Deadline(b *testing.B) {
	benchSchedule(b, 256, 8, echelonDeadline)
}

func BenchmarkSchedule_512Hosts12Jobs(b *testing.B) {
	if testing.Short() {
		b.Skip("512-host mix skipped in -short mode")
	}
	benchSchedule(b, 512, 12, echelonCached)
}

// buildEventWorld assembles a steady-state snapshot for the per-event
// benchmarks: `jobs` eight-flow pipeline groups on disjoint 4-worker slices
// of a `hosts`-host fabric, every flow released. The snapshot follows the
// coordinator's assembly discipline (sorted groups, arrangement-order
// flows) so the schedulers see exactly what a live event would hand them.
func buildEventWorld(hosts, jobs int) (*sched.Snapshot, *fabric.Network, []string, error) {
	net := fabric.NewNetwork()
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%04d", i)
	}
	net.AddUniformHosts(10, names...)

	snap := &sched.Snapshot{Groups: make(map[string]*sched.GroupState, jobs)}
	gids := make([]string, 0, jobs)
	for j := 0; j < jobs; j++ {
		workers := make([]string, 4)
		for k := range workers {
			workers[k] = names[(j*4+k)%hosts]
		}
		flows := make([]*core.Flow, 8)
		for k := range flows {
			flows[k] = &core.Flow{
				ID:    fmt.Sprintf("j%02df%d", j, k),
				Src:   workers[k%4],
				Dst:   workers[(k+1)%4],
				Size:  unit.Bytes(64 + 8*k),
				Stage: k,
			}
		}
		g, err := core.New(fmt.Sprintf("job%02d", j), core.Pipeline{T: 2}, flows...)
		if err != nil {
			return nil, nil, nil, err
		}
		snap.Groups[g.ID] = &sched.GroupState{Group: g}
		for _, f := range g.Flows {
			snap.Flows = append(snap.Flows, &sched.FlowState{Flow: f, GroupID: g.ID, Remaining: f.Size})
		}
		gids = append(gids, g.ID)
	}
	return snap, net, gids, nil
}

// benchScheduleEvent measures the single-event hot path at steady state:
// each iteration finishes (or re-releases) one flow of one group, then asks
// either the incremental scheduler for a patch over the touched group
// (delta=true) or the full scheduler for a cluster-wide re-solve with a warm
// plan cache (delta=false) — the two paths a coordinator flow event can
// take. Only the scheduling call itself is timed.
func benchScheduleEvent(b *testing.B, hosts, jobs int, delta bool) {
	b.Helper()
	base, net, gids, err := buildEventWorld(hosts, jobs)
	if err != nil {
		b.Fatal(err)
	}
	deltaS := sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()})
	fullS := sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}

	// The toggled flow is each group's last pipeline stage; groups keep
	// their seven other flows, so membership changes but never vanishes.
	lastOf := make(map[string]string, len(gids))
	for _, fs := range base.Flows {
		lastOf[fs.GroupID] = fs.Flow.ID
	}
	absent := make(map[string]bool, len(gids))
	rebuild := func() *sched.Snapshot {
		snap := &sched.Snapshot{Now: base.Now, Groups: base.Groups}
		snap.Flows = make([]*sched.FlowState, 0, len(base.Flows))
		for _, fs := range base.Flows {
			if !absent[fs.Flow.ID] {
				snap.Flows = append(snap.Flows, fs)
			}
		}
		return snap
	}

	// One full pass warms the plan cache and captures the incremental state.
	if delta {
		_, err = deltaS.Schedule(rebuild(), net)
	} else {
		_, err = fullS.Schedule(rebuild(), net)
	}
	if err != nil {
		b.Fatal(err)
	}

	var ns int64
	var mallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gid := gids[i%len(gids)]
		fid := lastOf[gid]
		absent[fid] = !absent[fid]
		snap := rebuild()
		var before, after runtime.MemStats
		if delta {
			deltaS.PlanCache().InvalidateGroup(gid)
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			_, ok, err := deltaS.Apply(snap, net, sched.Delta{Groups: []string{gid}})
			ns += time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatalf("delta fell back on event %d: %s", i, deltaS.LastOutcome().Reason)
			}
		} else {
			fullS.Cache.InvalidateGroup(gid)
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			_, err := fullS.Schedule(snap, net)
			ns += time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				b.Fatal(err)
			}
		}
		mallocs += after.Mallocs - before.Mallocs
	}
	b.StopTimer()
	b.ReportMetric(float64(ns)/float64(b.N), "ns/schedcall")
	b.ReportMetric(float64(mallocs)/float64(b.N), "allocs/schedcall")
}

func BenchmarkSchedule_2048Hosts64Jobs_DeltaEvent(b *testing.B) {
	benchScheduleEvent(b, 2048, 64, true)
}

func BenchmarkSchedule_2048Hosts64Jobs_FullEvent(b *testing.B) {
	benchScheduleEvent(b, 2048, 64, false)
}

func BenchmarkSchedule_4096Hosts64Jobs_DeltaEvent(b *testing.B) {
	if testing.Short() {
		b.Skip("4096-host mix skipped in -short mode")
	}
	benchScheduleEvent(b, 4096, 64, true)
}

func BenchmarkSchedule_4096Hosts64Jobs_FullEvent(b *testing.B) {
	if testing.Short() {
		b.Skip("4096-host mix skipped in -short mode")
	}
	benchScheduleEvent(b, 4096, 64, false)
}
