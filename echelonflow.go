// Package echelonflow is an implementation of EchelonFlow (HotNets '22):
// a network abstraction and scheduling system for flows in distributed deep
// learning training, where semantically related flows should finish in the
// staggered pattern dictated by the job's computation arrangement rather
// than simultaneously.
//
// The package re-exports the library's stable surface:
//
//   - Flows, EchelonFlows and arrangement functions (Coflow, Pipeline,
//     Staged, Absolute) with the tardiness objectives of the paper's §3;
//   - schedulers: EchelonMADD (the paper's contribution), Varys-style
//     CoflowMADD, max-min Fair sharing, SRPT and FIFO baselines;
//   - DDLT paradigm compilers (DP-AllReduce, DP-PS, GPipe PP, Megatron TP,
//     ZeRO FSDP) producing computation graphs with per-group arrangements;
//   - a compute/network co-simulator and a live Coordinator/Agent pair
//     enforcing allocations over real TCP connections.
//
// Quick start:
//
//	job := echelonflow.PipelineGPipe{
//		Name:         "job",
//		Model:        echelonflow.UniformModel("m", 8, 1e6, 4e5, 0.01, 0.02),
//		Workers:      []string{"w0", "w1", "w2", "w3"},
//		MicroBatches: 8,
//		Iterations:   2,
//	}
//	w, err := job.Build()
//	// handle err
//	res, err := echelonflow.SimulateUniform(w, 1e9, echelonflow.EchelonScheduler(true))
//	// handle err; inspect res.Makespan, res.Groups, res.Flows
package echelonflow

import (
	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// Scalar quantities: seconds, bytes, bytes per second.
type (
	Time  = unit.Time
	Bytes = unit.Bytes
	Rate  = unit.Rate
)

// Core abstraction (paper §3).
type (
	Flow        = core.Flow
	EchelonFlow = core.EchelonFlow
	Arrangement = core.Arrangement
	Coflow      = core.Coflow
	Pipeline    = core.Pipeline
	Staged      = core.Staged
	Absolute    = core.Absolute
	Outcome     = core.Outcome
)

// NewEchelonFlow builds a validated EchelonFlow (Definition 3.1).
func NewEchelonFlow(id string, arr Arrangement, flows ...*Flow) (*EchelonFlow, error) {
	return core.New(id, arr, flows...)
}

// NewCoflow builds a Coflow presented as an EchelonFlow (Property 2).
func NewCoflow(id string, flows ...*Flow) (*EchelonFlow, error) {
	return core.NewCoflow(id, flows...)
}

// NewFSDPArrangement builds the Eq. 7 staggered-Coflow arrangement.
func NewFSDPArrangement(layers int, tFwd, tBwd Time) (Staged, error) {
	return core.NewFSDP(layers, tFwd, tBwd)
}

// FlowTardiness is Eq. 1; see also Outcome for group-level metrics.
func FlowTardiness(actualFinish, idealFinish Time) Time {
	return core.FlowTardiness(actualFinish, idealFinish)
}

// Fabric model.
type Network = fabric.Network

// NewNetwork returns an empty big-switch fabric.
func NewNetwork() *Network { return fabric.NewNetwork() }

// Schedulers.
type Scheduler = sched.Scheduler

// EchelonScheduler returns the paper's EchelonFlow scheduler (EchelonMADD);
// backfill makes it work-conserving.
func EchelonScheduler(backfill bool) Scheduler {
	return sched.EchelonMADD{Backfill: backfill}
}

// EchelonSchedulerGlobalEDF returns EchelonMADD with global earliest-
// deadline class planning, which expresses workloads whose computation
// interleaves consumption across EchelonFlows (e.g. 1F1B pipelines); see
// the E7 ablation in EXPERIMENTS.md.
func EchelonSchedulerGlobalEDF(backfill bool) Scheduler {
	return sched.EchelonMADD{Backfill: backfill, GlobalEDF: true}
}

// CoflowScheduler returns Varys-style Coflow scheduling (SEBF + MADD).
func CoflowScheduler(backfill bool) Scheduler {
	return sched.CoflowMADD{Backfill: backfill}
}

// FairScheduler returns per-flow max-min fair sharing.
func FairScheduler() Scheduler { return sched.Fair{} }

// SRPTScheduler returns smallest-remaining-first per-flow scheduling.
func SRPTScheduler() Scheduler { return sched.SRPT{} }

// FIFOScheduler returns release-order per-flow scheduling.
func FIFOScheduler() Scheduler { return sched.FIFO{} }

// EDFScheduler returns per-flow earliest-ideal-finish-first scheduling —
// deadline-aware but group-oblivious.
func EDFScheduler() Scheduler { return sched.EDF{} }

// DDLT paradigm compilers (paper §2, §4).
type (
	Model             = ddlt.Model
	Layer             = ddlt.Layer
	Workload          = ddlt.Workload
	DPAllReduce       = ddlt.DPAllReduce
	DPParameterServer = ddlt.DPParameterServer
	PipelineGPipe     = ddlt.PipelineGPipe
	Pipeline1F1B      = ddlt.Pipeline1F1B
	HybridTPPP        = ddlt.HybridTPPP
	TensorParallel    = ddlt.TensorParallel
	FSDP              = ddlt.FSDP
)

// UniformModel builds an n-layer model with identical layers.
func UniformModel(name string, layers int, params, activations Bytes, fwd, bwd Time) Model {
	return ddlt.Uniform(name, layers, params, activations, fwd, bwd)
}

// Model zoo: named templates with realistic relative footprints.
type ZooModel = ddlt.ZooModel

// Zoo template names.
const (
	ZooTransformer = ddlt.ZooTransformer
	ZooConvNet     = ddlt.ZooConvNet
	ZooMLP         = ddlt.ZooMLP
)

// NewZooModel instantiates a zoo template; see ddlt.NewZooModel.
func NewZooModel(kind ZooModel, blocks int, blockParams Bytes, computeRate Rate) (Model, error) {
	return ddlt.NewZooModel(kind, blocks, blockParams, computeRate)
}

// MergeWorkloads composes jobs onto one shared fabric.
func MergeWorkloads(ws ...*Workload) (*Workload, error) { return ddlt.Merge(ws...) }

// Simulation results.
type (
	SimResult   = sim.Result
	FlowRecord  = sim.FlowRecord
	GroupResult = sim.GroupResult
)

// Simulate runs a workload on the given fabric under the given scheduler.
func Simulate(w *Workload, net *Network, s Scheduler) (*SimResult, error) {
	simr, err := sim.New(sim.Options{
		Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements,
	})
	if err != nil {
		return nil, err
	}
	return simr.Run()
}

// SimulateUniform runs a workload with every host given symmetric capacity.
func SimulateUniform(w *Workload, capacity Rate, s Scheduler) (*SimResult, error) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(capacity, w.Hosts...)
	return Simulate(w, net, s)
}
