module echelonflow

go 1.22
