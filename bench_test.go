// Package echelonflow's benchmark suite regenerates every table and figure
// of the paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison). Each benchmark runs the
// corresponding experiment, fails on any violated shape check, and reports
// its headline numbers as custom metrics.
//
// Run with: go test -bench=. -benchmem
package echelonflow

import (
	"testing"

	"echelonflow/internal/experiments"
	"echelonflow/internal/sched"
)

// runExperiment executes one registered experiment per benchmark iteration,
// failing the benchmark if the experiment errors or any check fails.
func runExperiment(b *testing.B, run func() (*experiments.Report, error)) *experiments.Report {
	b.Helper()
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if failed := r.Failed(); len(failed) > 0 {
			b.Fatalf("%s: %d checks failed, first: %s (%s)",
				r.ID, len(failed), failed[0].Name, failed[0].Detail)
		}
		last = r
	}
	return last
}

func BenchmarkTable1_ParadigmCompliance(b *testing.B) {
	runExperiment(b, experiments.Table1)
}

func BenchmarkFigure1_PipelineTimeline(b *testing.B) {
	runExperiment(b, experiments.Fig1)
}

func BenchmarkFigure2_MotivatingExample(b *testing.B) {
	runExperiment(b, experiments.Fig2)
}

func BenchmarkFigure3_FSDPWorkflow(b *testing.B) {
	runExperiment(b, experiments.Fig3)
}

func BenchmarkFigure4_DPWorkflow(b *testing.B) {
	runExperiment(b, experiments.Fig4)
}

func BenchmarkFigure5_TPWorkflow(b *testing.B) {
	runExperiment(b, experiments.Fig5)
}

func BenchmarkFigure6_ArrangementFunction(b *testing.B) {
	runExperiment(b, experiments.Fig6)
}

func BenchmarkFigure7_SystemSketch(b *testing.B) {
	if testing.Short() {
		b.Skip("live TCP benchmark skipped in -short mode")
	}
	runExperiment(b, experiments.Fig7)
}

func BenchmarkCaseStudies_Arrangements(b *testing.B) {
	runExperiment(b, experiments.CaseStudies)
}

func BenchmarkProperty1_Optimality(b *testing.B) {
	runExperiment(b, experiments.Property1)
}

func BenchmarkProperty2_CoflowSuperset(b *testing.B) {
	runExperiment(b, experiments.Property2)
}

func BenchmarkProperty4_SchedulerComplexity(b *testing.B) {
	runExperiment(b, experiments.Property4)
}

func BenchmarkExtended_MultiJobTardiness(b *testing.B) {
	runExperiment(b, experiments.ExtMultiJob)
}

func BenchmarkExtended_BandwidthSweep(b *testing.B) {
	runExperiment(b, experiments.ExtBandwidthSweep)
}

func BenchmarkExtended_DelayRecovery(b *testing.B) {
	runExperiment(b, experiments.ExtDelayRecovery)
}

func BenchmarkExtended_WeightedTardiness(b *testing.B) {
	runExperiment(b, experiments.ExtWeightedTardiness)
}

func BenchmarkExtended_MixedParadigms(b *testing.B) {
	runExperiment(b, experiments.ExtMixedParadigms)
}

func BenchmarkExtended_CoordinatorThroughput(b *testing.B) {
	runExperiment(b, experiments.ExtCoordinatorLatency)
}

// BenchmarkScheduler_* measure raw scheduler decision latency on a Fig. 2
// style snapshot — the hot path of both the simulator and the live
// Coordinator.

func benchScheduler(b *testing.B, s Scheduler) {
	b.Helper()
	job := PipelineGPipe{
		Name:         "pp",
		Model:        UniformModel("m", 8, 2, 5, 1, 1),
		Workers:      []string{"s0", "s1", "s2", "s3"},
		MicroBatches: 8,
		Iterations:   1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := job.Build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SimulateUniform(w, 4, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduler_EchelonMADD(b *testing.B) {
	benchScheduler(b, sched.EchelonMADD{Backfill: true})
}

func BenchmarkScheduler_CoflowMADD(b *testing.B) {
	benchScheduler(b, sched.CoflowMADD{Backfill: true})
}

func BenchmarkScheduler_Fair(b *testing.B) {
	benchScheduler(b, sched.Fair{})
}

func BenchmarkExtended_1F1BProfiledArrangement(b *testing.B) {
	runExperiment(b, experiments.Ext1F1B)
}

func BenchmarkExtended_CoflowBatch(b *testing.B) {
	runExperiment(b, experiments.ExtCoflowBatch)
}

func BenchmarkExtended_ReschedulingCadence(b *testing.B) {
	runExperiment(b, experiments.ExtCadence)
}

func BenchmarkExtended_LinkDegradation(b *testing.B) {
	runExperiment(b, experiments.ExtDegradedLink)
}

func BenchmarkExtended_RackOversubscription(b *testing.B) {
	runExperiment(b, experiments.ExtRackOversubscription)
}

func BenchmarkExtended_ChaosReplay(b *testing.B) {
	runExperiment(b, experiments.ExtChaos)
}

func BenchmarkExtended_CrashRecovery(b *testing.B) {
	runExperiment(b, experiments.ExtCrashRecovery)
}

func BenchmarkExtended_CheckHarness(b *testing.B) {
	runExperiment(b, experiments.ExtCheckHarness)
}

func BenchmarkExtended_PlacementPolicies(b *testing.B) {
	runExperiment(b, experiments.ExtOnlinePlacement)
}

func BenchmarkExtended_LeafSpinePlacement(b *testing.B) {
	runExperiment(b, experiments.ExtLeafSpinePlacement)
}
