package echelonflow

import (
	"testing"
)

// The facade test exercises the documented public API end to end, exactly
// as the package doc's quick start does.
func TestQuickStart(t *testing.T) {
	job := PipelineGPipe{
		Name:         "job",
		Model:        UniformModel("m", 8, 1e6, 4e5, 0.01, 0.02),
		Workers:      []string{"w0", "w1", "w2", "w3"},
		MicroBatches: 8,
		Iterations:   2,
	}
	w, err := job.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateUniform(w, 1e9, EchelonScheduler(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if len(res.Groups) == 0 || len(res.Flows) == 0 {
		t.Error("empty result maps")
	}
}

func TestFacadeConstructors(t *testing.T) {
	g, err := NewEchelonFlow("g", Pipeline{T: 1},
		&Flow{ID: "a", Src: "x", Dst: "y", Size: 1, Stage: 0})
	if err != nil || g.ID != "g" {
		t.Fatalf("NewEchelonFlow: %v", err)
	}
	c, err := NewCoflow("c", &Flow{ID: "b", Src: "x", Dst: "y", Size: 1})
	if err != nil || !c.IsCoflow() {
		t.Fatalf("NewCoflow: %v", err)
	}
	arr, err := NewFSDPArrangement(3, 1, 2)
	if err != nil || arr.Stages() != 6 {
		t.Fatalf("NewFSDPArrangement: %v", err)
	}
	if FlowTardiness(5, 3) != 2 {
		t.Error("FlowTardiness")
	}
	net := NewNetwork()
	if err := net.AddHost("h", 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSchedulers(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Scheduler{
		EchelonScheduler(true), EchelonScheduler(false),
		EchelonSchedulerGlobalEDF(true),
		CoflowScheduler(true), CoflowScheduler(false),
		FairScheduler(), SRPTScheduler(), FIFOScheduler(), EDFScheduler(),
	} {
		if s.Name() == "" || names[s.Name()] {
			t.Errorf("bad scheduler name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

func TestMergeWorkloadsFacade(t *testing.T) {
	a, err := DPAllReduce{Name: "a", Model: UniformModel("m", 2, 4, 1, 1, 1),
		Workers: []string{"x", "y"}, BucketCount: 1, Iterations: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := TensorParallel{Name: "b", Model: UniformModel("m", 2, 4, 4, 1, 1),
		Workers: []string{"x", "y"}, Iterations: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeWorkloads(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateUniform(merged, 8, CoflowScheduler(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("merged simulation failed")
	}
}

func TestZooFacade(t *testing.T) {
	m, err := NewZooModel(ZooTransformer, 4, 1e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FSDP{Name: "zoo", Model: m, Workers: []string{"a", "b"}, Iterations: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateUniform(w, 1e8, EchelonScheduler(true)); err != nil {
		t.Fatal(err)
	}
}
